"""Run every paper experiment and print the paper-style reports.

Usage::

    python -m repro.experiments            # everything (slow: minutes)
    python -m repro.experiments table1     # a single experiment
    python -m repro.experiments figure2 --quick
    python -m repro.experiments figure1 figure2 --export-dir out/
    python -m repro.experiments dynamic --trace-out dynamic.jsonl

``--quick`` shrinks Monte-Carlo repetition counts for smoke runs;
``--export-dir`` additionally writes machine-readable CSV/JSON files
for the experiments that support it; ``--trace-out`` captures every
gradient-projection solve the selected experiments perform into one
JSONL run manifest (see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Callable

from ..obs import (
    SolverTrace,
    collecting_metrics,
    configure_logging,
    get_logger,
    tracing,
    write_manifest,
)

from ..rng import set_default_seed
from .bias import run_bias
from .closed_loop import run_closed_loop_experiment
from .comparison import run_comparison
from .convergence import run_convergence
from .dynamic import run_dynamic
from .ecmp_ablation import run_ecmp_ablation
from .failures import run_failure_sweep
from .figure1 import run_figure1
from .figure2 import run_figure2
from .generality import run_generality
from .heuristics import run_heuristics
from .inference import run_inference
from .practical import run_practical
from .table1 import run_table1

__all__ = ["main", "EXPERIMENTS"]

logger = get_logger(__name__)


def _figure1(quick: bool) -> str:
    return run_figure1().format()


def _table1(quick: bool) -> str:
    return run_table1(runs=5 if quick else 20).format()


def _convergence(quick: bool) -> str:
    return run_convergence(runs=20 if quick else 200).format()


def _comparison(quick: bool) -> str:
    return run_comparison().format()


def _figure2(quick: bool) -> str:
    if quick:
        import numpy as np

        thetas = tuple(float(t) for t in np.geomspace(5_000, 2_000_000, 5))
        return run_figure2(thetas=thetas, runs=5).format()
    return run_figure2().format()


def _dynamic(quick: bool) -> str:
    return run_dynamic().format()


def _practical(quick: bool) -> str:
    if quick:
        import numpy as np

        thetas = tuple(float(t) for t in np.geomspace(20_000, 500_000, 3))
        return run_practical(thetas=thetas).format()
    return run_practical().format()


def _closed_loop(quick: bool) -> str:
    intervals = 8 if quick else 16
    return run_closed_loop_experiment(num_intervals=intervals).format()


def _bias(quick: bool) -> str:
    return run_bias(repetitions=4 if quick else 10).format()


def _inference(quick: bool) -> str:
    return run_inference().format()


def _generality(quick: bool) -> str:
    return run_generality().format()


def _failures(quick: bool) -> str:
    return run_failure_sweep().format()


def _ecmp(quick: bool) -> str:
    return run_ecmp_ablation().format()


def _heuristics(quick: bool) -> str:
    budgets = (2, 6, 10) if quick else (2, 4, 6, 8, 10)
    return run_heuristics(budgets=budgets).format()


EXPERIMENTS: dict[str, Callable[[bool], str]] = {
    "figure1": _figure1,
    "table1": _table1,
    "convergence": _convergence,
    "comparison": _comparison,
    "figure2": _figure2,
    "dynamic": _dynamic,
    "practical": _practical,
    "closed-loop": _closed_loop,
    "bias": _bias,
    "inference": _inference,
    "generality": _generality,
    "failures": _failures,
    "ecmp": _ecmp,
    "heuristics": _heuristics,
}


def _export_figure1(quick: bool, outdir: Path) -> list[Path]:
    from .export import figure1_to_csv, write_csv

    path = outdir / "figure1.csv"
    write_csv(figure1_to_csv(run_figure1()), path)
    return [path]


def _export_figure2(quick: bool, outdir: Path) -> list[Path]:
    from .export import figure2_to_csv, write_csv

    result = _run_figure2_result(quick)
    path = outdir / "figure2.csv"
    write_csv(figure2_to_csv(result), path)
    return [path]


def _run_figure2_result(quick: bool):
    if quick:
        import numpy as np

        thetas = tuple(float(t) for t in np.geomspace(5_000, 2_000_000, 5))
        return run_figure2(thetas=thetas, runs=5)
    return run_figure2()


def _export_table1(quick: bool, outdir: Path) -> list[Path]:
    from .export import table1_to_dict, write_json

    path = outdir / "table1.json"
    write_json(table1_to_dict(run_table1(runs=5 if quick else 20)), path)
    return [path]


def _export_convergence(quick: bool, outdir: Path) -> list[Path]:
    from .export import convergence_to_dict, write_json

    path = outdir / "convergence.json"
    write_json(
        convergence_to_dict(run_convergence(runs=20 if quick else 200)), path
    )
    return [path]


def _export_comparison(quick: bool, outdir: Path) -> list[Path]:
    from .export import comparison_to_dict, write_json

    path = outdir / "comparison.json"
    write_json(comparison_to_dict(run_comparison()), path)
    return [path]


def _export_dynamic(quick: bool, outdir: Path) -> list[Path]:
    from .export import dynamic_to_dict, write_json

    path = outdir / "dynamic.json"
    write_json(dynamic_to_dict(run_dynamic()), path)
    return [path]


def _export_failures(quick: bool, outdir: Path) -> list[Path]:
    from .export import failures_to_csv, write_csv

    path = outdir / "failures.csv"
    write_csv(failures_to_csv(run_failure_sweep()), path)
    return [path]


def _export_generality(quick: bool, outdir: Path) -> list[Path]:
    from .export import generality_to_dict, write_json

    path = outdir / "generality.json"
    write_json(generality_to_dict(run_generality()), path)
    return [path]


def _export_heuristics(quick: bool, outdir: Path) -> list[Path]:
    from .export import heuristics_to_csv, write_csv

    budgets = (2, 6, 10) if quick else (2, 4, 6, 8, 10)
    path = outdir / "heuristics.csv"
    write_csv(heuristics_to_csv(run_heuristics(budgets=budgets)), path)
    return [path]


#: Experiments with machine-readable exporters.
EXPORTERS: dict[str, Callable[[bool, Path], list[Path]]] = {
    "figure1": _export_figure1,
    "figure2": _export_figure2,
    "table1": _export_table1,
    "convergence": _export_convergence,
    "comparison": _export_comparison,
    "dynamic": _export_dynamic,
    "failures": _export_failures,
    "generality": _export_generality,
    "heuristics": _export_heuristics,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        choices=[*EXPERIMENTS, []],
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced repetition counts"
    )
    parser.add_argument(
        "--export-dir",
        type=Path,
        default=None,
        help="also write CSV/JSON files for exportable experiments",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE.jsonl",
        help="capture every solve into one JSONL run manifest",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="pin the ambient RNG seed for every stochastic component "
        "(default: the package seed, 2006)",
    )
    parser.add_argument(
        "--log-level",
        default="info",
        choices=("debug", "info", "warning", "error"),
        help="stderr logging threshold",
    )
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    set_default_seed(args.seed)

    names = args.experiments or list(EXPERIMENTS)
    if args.export_dir is not None:
        args.export_dir.mkdir(parents=True, exist_ok=True)

    trace = SolverTrace(label=f"experiments:{','.join(names)}")
    scope = tracing(trace) if args.trace_out else nullcontext()
    metrics_scope = collecting_metrics() if args.trace_out else nullcontext()
    with scope, metrics_scope as registry:
        for name in names:
            logger.info("running %s (quick=%s)", name, args.quick)
            started = time.perf_counter()
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            print(EXPERIMENTS[name](args.quick))
            logger.info(
                "%s finished in %.2fs", name, time.perf_counter() - started
            )
            if args.export_dir is not None and name in EXPORTERS:
                for path in EXPORTERS[name](args.quick, args.export_dir):
                    logger.info("exported %s", path)
                    print(f"[exported {path}]")
        metrics_snapshot = registry.snapshot() if registry else None
    if args.trace_out:
        manifest_path = write_manifest(
            args.trace_out,
            trace,
            metrics=metrics_snapshot,
            extra={"experiments": names, "quick": args.quick},
        )
        logger.info("run manifest written to %s", manifest_path)
    return 0
