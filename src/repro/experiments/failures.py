"""Extension experiment: single-failure sweep on GEANT.

Which circuit failure hurts a frozen monitoring configuration most?
For every duplex circuit whose removal keeps the measurement task
connected, this experiment re-routes the network, evaluates the frozen
Table-I-optimal configuration on the post-failure state, and contrasts
it with a fresh re-optimization — producing a ranked what-if table an
operator can read as "re-optimize immediately on *these* failures".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.problem import SamplingProblem
from ..core.solver import solve
from ..traffic.dynamics import fail_link
from ..traffic.workloads import MeasurementTask, janet_task
from .dynamic import _evaluate_static
from .reporting import format_table

__all__ = ["FailureImpact", "FailureSweepResult", "run_failure_sweep"]


@dataclass(frozen=True)
class FailureImpact:
    """Effect of one circuit failure on the frozen configuration."""

    circuit: str
    static_worst_utility: float
    static_objective: float
    reopt_worst_utility: float
    reopt_objective: float

    @property
    def worst_utility_drop(self) -> float:
        """How much of the recoverable worst-OD utility the frozen
        configuration loses."""
        return self.reopt_worst_utility - self.static_worst_utility


@dataclass(frozen=True)
class FailureSweepResult:
    baseline_worst_utility: float
    impacts: list[FailureImpact]  # sorted by damage, worst first
    disconnecting: list[str]  # circuits whose failure splits the task

    def format(self) -> str:
        rows = [
            [
                impact.circuit,
                impact.static_worst_utility,
                impact.reopt_worst_utility,
                impact.worst_utility_drop,
            ]
            for impact in self.impacts[:12]
        ]
        table = format_table(
            ["failed circuit", "frozen worst", "reopt worst", "recoverable"],
            rows,
            title=(
                "Single-failure sweep (baseline worst utility "
                f"{self.baseline_worst_utility:.4f}; top rows = most damaging)"
            ),
        )
        if self.disconnecting:
            table += "\ntask-disconnecting circuits: " + ", ".join(
                self.disconnecting
            )
        return table


def run_failure_sweep(
    theta_packets: float = 100_000.0,
    task: MeasurementTask | None = None,
) -> FailureSweepResult:
    """Sweep every duplex circuit failure on the task's network."""
    task = task or janet_task()
    baseline_problem = SamplingProblem.from_task(task, theta_packets)
    baseline = solve(baseline_problem)
    names = [link.name for link in task.network.links]
    rates_by_name = {
        names[i]: float(baseline.rates[i]) for i in range(len(names))
    }

    circuits = sorted(
        {tuple(sorted((link.src, link.dst))) for link in task.network.links}
    )
    impacts = []
    disconnecting = []
    for a, b in circuits:
        label = f"{a}<->{b}"
        try:
            failed = fail_link(task, a, b)
        except ValueError:
            disconnecting.append(label)
            continue
        problem = SamplingProblem.from_task(failed, theta_packets).clamped()
        static_obj, static_worst, _ = _evaluate_static(
            problem, rates_by_name, failed
        )
        reopt = solve(problem)
        impacts.append(
            FailureImpact(
                circuit=label,
                static_worst_utility=static_worst,
                static_objective=static_obj,
                reopt_worst_utility=float(reopt.od_utilities.min()),
                reopt_objective=reopt.objective_value,
            )
        )
    impacts.sort(key=lambda impact: impact.static_worst_utility)
    return FailureSweepResult(
        baseline_worst_utility=float(baseline.od_utilities.min()),
        impacts=impacts,
        disconnecting=disconnecting,
    )
