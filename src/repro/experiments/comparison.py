"""§V-C: the optimal solution versus the access-link naive solution.

The first naive alternative monitors only the JANET access link.  To
track the smallest OD pair (JANET→LU) as accurately as the optimum,
the access link must sample at that pair's optimal *effective* rate —
but it then pays that rate over the **entire** access load.  The paper
works the numbers in footnote 2: ~1 % of 57 933 pkt/s over 5 minutes
is 173 798 sampled packets, about 70 % more than the optimum's
θ = 100 000.

This experiment recomputes that capacity-inflation factor on the
synthetic workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.access_link import access_link_solution, capacity_to_match_rate
from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution
from ..core.solver import solve
from ..traffic.workloads import MeasurementTask, janet_task

__all__ = ["AccessLinkComparison", "run_comparison"]


@dataclass(frozen=True)
class AccessLinkComparison:
    """Capacity cost of the access-link solution at matched accuracy."""

    optimal: SamplingSolution
    theta_packets: float
    smallest_od: str
    smallest_od_rate: float
    access_load_pps: float
    access_theta_packets: float

    @property
    def capacity_inflation(self) -> float:
        """``θ_access / θ_optimal`` (paper: ≈ 1.7)."""
        return self.access_theta_packets / self.theta_packets

    @property
    def extra_capacity_fraction(self) -> float:
        """Extra capacity the access link needs (paper: ≈ 70 %)."""
        return self.capacity_inflation - 1.0

    def format(self) -> str:
        return "\n".join(
            [
                "Access-link comparison (paper §V-C: ~70 % more capacity "
                "needed)",
                f"  optimal theta: {self.theta_packets:,.0f} packets/interval",
                f"  smallest OD pair: {self.smallest_od} "
                f"(optimal effective rate {self.smallest_od_rate:.5f})",
                f"  access-link load: {self.access_load_pps:,.0f} pkt/s",
                "  access-link theta for the same rate: "
                f"{self.access_theta_packets:,.0f} packets/interval",
                f"  capacity inflation: {self.capacity_inflation:.2f}x "
                f"(+{self.extra_capacity_fraction:.0%})",
            ]
        )


def run_comparison(
    theta_packets: float = 100_000.0,
    task: MeasurementTask | None = None,
    method: str = "gradient_projection",
) -> AccessLinkComparison:
    """Compare the optimum with the access-link solution at equal accuracy.

    The matching criterion is the paper's: give the smallest OD pair
    the same effective sampling rate the optimum gives it.
    """
    task = task or janet_task()
    problem = SamplingProblem.from_task(task, theta_packets)
    optimal = solve(problem, method=method)

    smallest = int(np.argmin(task.od_sizes_pps))
    rho_small = float(optimal.effective_rates[smallest])
    access_load = task.access_link_load_pps
    access_theta = capacity_to_match_rate(
        rho_small, access_load, task.interval_seconds
    )
    # Sanity: the baseline object itself, at the matched capacity.
    matched = access_link_solution(
        problem.with_theta(min(access_theta, access_load * task.interval_seconds)),
        access_load,
    )
    assert matched.access_rate >= rho_small * 0.999

    return AccessLinkComparison(
        optimal=optimal,
        theta_packets=theta_packets,
        smallest_od=task.routing.od_pairs[smallest].name,
        smallest_od_rate=rho_small,
        access_load_pps=access_load,
        access_theta_packets=access_theta,
    )
