"""Figure 1: the utility function ``M(ρ)`` and its splice point.

The paper plots ``M`` against the effective sampling rate for two mean
inverse sizes (average flow sizes around 500 packets), annotating the
splice point ``x₀`` where the quadratic expansion hands over to the
hyperbolic accuracy — at utility ≈ 0.666…0.668.  This experiment
regenerates the two curves and the annotations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.utility import MeanSquaredRelativeAccuracy
from .reporting import ascii_plot, format_series

__all__ = ["Figure1Result", "run_figure1"]

#: Average flow sizes of the two curves.  500 packets gives
#: ``M(x₀) ≈ 0.668`` and 2000 gives ``≈ 0.667``, bracketing the
#: paper's annotated 0.666/0.668.
DEFAULT_AVERAGE_SIZES = (500.0, 2000.0)


@dataclass(frozen=True)
class Figure1Result:
    """Curves of ``M(ρ)`` plus splice-point annotations."""

    rho: np.ndarray
    curves: dict[str, np.ndarray]
    splice_points: dict[str, tuple[float, float]]  # label -> (x0, M(x0))

    def format(self) -> str:
        subsample = slice(None, None, max(1, len(self.rho) // 20))
        text = format_series(
            "rho",
            list(self.rho[subsample]),
            {k: list(v[subsample]) for k, v in self.curves.items()},
            title="Figure 1 — utility function M(rho)",
        )
        notes = [
            f"  {label}: x0 = {x0:.6f}, M(x0) = {m0:.4f}"
            for label, (x0, m0) in self.splice_points.items()
        ]
        first = next(iter(self.curves))
        plot = ascii_plot(
            list(self.rho), list(self.curves[first]), label=f"[{first}]"
        )
        return "\n".join([text, "splice points:"] + notes + [plot])


def run_figure1(
    average_sizes: tuple[float, ...] = DEFAULT_AVERAGE_SIZES,
    num_points: int = 201,
) -> Figure1Result:
    """Evaluate ``M(ρ)`` on ``[0, 1]`` for each average flow size."""
    if num_points < 2:
        raise ValueError("need at least two points")
    rho = np.linspace(0.0, 1.0, num_points)
    curves: dict[str, np.ndarray] = {}
    splices: dict[str, tuple[float, float]] = {}
    for size in average_sizes:
        if size <= 2:
            raise ValueError("average size must exceed 2 packets")
        utility = MeanSquaredRelativeAccuracy(1.0 / size)
        label = f"S={size:g}"
        curves[label] = np.asarray(utility.value(rho))
        splices[label] = (utility.splice_point, utility.splice_value)
    return Figure1Result(rho=rho, curves=curves, splice_points=splices)
