"""Export experiment results to CSV / JSON for external plotting.

The experiment objects print paper-style text; analysis pipelines want
machine-readable series.  Every exporter takes the result object of
the corresponding ``run_*`` function and returns a string (CSV) or a
JSON-serializable dict, plus ``write_*`` helpers targeting a path.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any

from .comparison import AccessLinkComparison
from .convergence import ConvergenceStats
from .dynamic import DynamicResult
from .failures import FailureSweepResult
from .figure1 import Figure1Result
from .figure2 import Figure2Result
from .generality import GeneralityResult
from .heuristics import HeuristicsResult
from .table1 import Table1Result

__all__ = [
    "figure1_to_csv",
    "figure2_to_csv",
    "table1_to_dict",
    "convergence_to_dict",
    "comparison_to_dict",
    "dynamic_to_dict",
    "failures_to_csv",
    "generality_to_dict",
    "heuristics_to_csv",
    "write_csv",
    "write_json",
]


def figure1_to_csv(result: Figure1Result) -> str:
    """One row per ρ grid point, one column per curve."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    labels = list(result.curves)
    writer.writerow(["rho", *labels])
    for i, rho in enumerate(result.rho):
        writer.writerow(
            [f"{rho:.6f}"] + [f"{result.curves[l][i]:.8f}" for l in labels]
        )
    return buffer.getvalue()


def figure2_to_csv(result: Figure2Result) -> str:
    """One row per θ, columns for both configurations' statistics."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "theta", "avg_opt", "worst_opt", "best_opt",
            "avg_restricted", "worst_restricted", "best_restricted",
        ]
    )
    for opt, restricted in zip(result.optimal, result.restricted):
        writer.writerow(
            [
                f"{opt.theta_packets:.0f}",
                f"{opt.average:.6f}", f"{opt.worst:.6f}", f"{opt.best:.6f}",
                f"{restricted.average:.6f}", f"{restricted.worst:.6f}",
                f"{restricted.best:.6f}",
            ]
        )
    return buffer.getvalue()


def table1_to_dict(result: Table1Result) -> dict[str, Any]:
    """JSON-friendly rendering of the regenerated Table I."""
    return {
        "theta_packets": result.solution.problem.theta_packets,
        "interval_seconds": result.solution.problem.interval_seconds,
        "od_pairs": [
            {
                "name": row.od_name,
                "size_pps": row.size_pps,
                "monitored_links": row.monitored_links,
                "utility": row.utility,
                "accuracy": row.accuracy,
            }
            for row in result.rows
        ],
        "links": [
            {
                "name": name,
                "rate": result.link_rates[name],
                "load_pps": result.link_loads[name],
                "theta_share": result.link_contributions[name],
            }
            for name in result.link_rates
        ],
        "summary": {
            "active_monitors": len(result.link_rates),
            "max_rate": result.max_rate,
            "max_monitors_per_od": result.max_monitors_per_od,
            "average_accuracy": result.average_accuracy,
            "worst_accuracy": result.worst_accuracy,
        },
    }


def convergence_to_dict(stats: ConvergenceStats) -> dict[str, Any]:
    return {
        "runs": stats.runs,
        "converged_runs": stats.converged_runs,
        "convergence_fraction": stats.convergence_fraction,
        "mean_iterations": stats.mean_iterations,
        "max_iterations": int(stats.iterations.max()),
        "mean_releases": stats.mean_releases,
        "std_releases": stats.std_releases,
        "iterations": [int(i) for i in stats.iterations],
        "releases": [int(r) for r in stats.releases],
    }


def comparison_to_dict(result: AccessLinkComparison) -> dict[str, Any]:
    return {
        "theta_packets": result.theta_packets,
        "smallest_od": result.smallest_od,
        "smallest_od_rate": result.smallest_od_rate,
        "access_load_pps": result.access_load_pps,
        "access_theta_packets": result.access_theta_packets,
        "capacity_inflation": result.capacity_inflation,
    }


def dynamic_to_dict(result: DynamicResult) -> dict[str, Any]:
    return {
        "baseline_objective": result.baseline_objective,
        "events": [
            {
                "label": e.label,
                "static_objective": e.static_objective,
                "static_worst_utility": e.static_worst_utility,
                "static_budget_overrun": e.static_budget_overrun,
                "reopt_objective": e.reopt_objective,
                "reopt_worst_utility": e.reopt_worst_utility,
                "reopt_iterations": e.reopt_iterations,
            }
            for e in result.events
        ],
    }


def failures_to_csv(result: FailureSweepResult) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["circuit", "static_worst", "reopt_worst", "recoverable"]
    )
    for impact in result.impacts:
        writer.writerow(
            [
                impact.circuit,
                f"{impact.static_worst_utility:.6f}",
                f"{impact.reopt_worst_utility:.6f}",
                f"{impact.worst_utility_drop:.6f}",
            ]
        )
    return buffer.getvalue()


def generality_to_dict(result: GeneralityResult) -> dict[str, Any]:
    return {
        "rows": [
            {
                "topology": row.topology,
                "active_monitors": row.active_monitors,
                "num_links": row.num_links,
                "max_rate": row.max_rate,
                "worst_utility": row.worst_utility,
                "utility_spread": row.utility_spread,
                "uniform_worst_utility": row.uniform_worst_utility,
            }
            for row in result.rows
        ]
    }


def heuristics_to_csv(result: HeuristicsResult) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["k", "coverage", "density", "elimination", "joint"]
    )
    for point in result.points:
        writer.writerow(
            [
                point.max_monitors,
                f"{point.coverage_objective:.6f}",
                f"{point.density_objective:.6f}",
                f"{point.elimination_objective:.6f}",
                f"{result.joint_objective:.6f}",
            ]
        )
    return buffer.getvalue()


def write_csv(text: str, path: str | Path) -> None:
    """Write exporter CSV output to ``path``."""
    Path(path).write_text(text)


def write_json(payload: dict[str, Any], path: str | Path) -> None:
    """Write exporter dict output to ``path`` as pretty JSON."""
    Path(path).write_text(json.dumps(payload, indent=2))
