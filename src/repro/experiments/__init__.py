"""Experiment harness: one module per paper table/figure (DESIGN.md §4),
plus extension experiments (dynamics, practical deployment)."""

from .bias import BiasResult, BiasRow, run_bias
from .closed_loop import ClosedLoopResult, run_closed_loop_experiment
from .comparison import AccessLinkComparison, run_comparison
from .convergence import ConvergenceStats, run_convergence
from .dynamic import DynamicEventResult, DynamicResult, run_dynamic
from .ecmp_ablation import EcmpAblationResult, run_ecmp_ablation
from .failures import FailureImpact, FailureSweepResult, run_failure_sweep
from .figure1 import Figure1Result, run_figure1
from .inference import InferenceResult, run_inference
from .figure2 import Figure2Point, Figure2Result, run_figure2
from .generality import GeneralityResult, GeneralityRow, run_generality
from .heuristics import HeuristicPoint, HeuristicsResult, run_heuristics
from .practical import PracticalResult, run_practical
from .table1 import Table1Result, Table1Row, run_table1

__all__ = [
    "run_figure1",
    "Figure1Result",
    "run_table1",
    "Table1Result",
    "Table1Row",
    "run_convergence",
    "ConvergenceStats",
    "run_comparison",
    "AccessLinkComparison",
    "run_figure2",
    "Figure2Result",
    "Figure2Point",
    "run_dynamic",
    "DynamicResult",
    "DynamicEventResult",
    "run_practical",
    "PracticalResult",
    "run_closed_loop_experiment",
    "ClosedLoopResult",
    "run_bias",
    "BiasResult",
    "BiasRow",
    "run_inference",
    "InferenceResult",
    "run_generality",
    "GeneralityResult",
    "GeneralityRow",
    "run_failure_sweep",
    "FailureSweepResult",
    "FailureImpact",
    "run_ecmp_ablation",
    "EcmpAblationResult",
    "run_heuristics",
    "HeuristicsResult",
    "HeuristicPoint",
]
