"""Extension experiment: static configuration vs re-optimization.

The paper's motivation (§I) is that static monitor placement degrades
under traffic variation — re-routing events, anomalies, diurnal
evolution.  This experiment quantifies that claim on the synthetic
GEANT workload:

* compute the optimal configuration for the baseline task (midday);
* play a scenario of events — night trough, an OD-pair flash anomaly,
  and a core link failure with IGP re-routing;
* at each event compare the *frozen* baseline configuration against a
  warm-started re-optimization, on objective utility, worst-OD
  utility, and capacity-budget compliance.

The static configuration both overshoots the budget when loads grow
and strands utility when routing moves traffic away from its monitors
— the two failure modes the joint formulation exists to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batch import WarmStartChain
from ..core.objective import SumUtilityObjective
from ..core.problem import SamplingProblem
from ..traffic.dynamics import fail_link, inject_anomaly, scale_diurnal
from ..traffic.workloads import MeasurementTask, janet_task
from .reporting import format_table

__all__ = ["DynamicEventResult", "DynamicResult", "run_dynamic"]


@dataclass(frozen=True)
class DynamicEventResult:
    """Static vs re-optimized comparison at one event."""

    label: str
    static_objective: float
    static_worst_utility: float
    static_budget_packets: float
    reopt_objective: float
    reopt_worst_utility: float
    reopt_iterations: int
    theta_packets: float

    @property
    def static_budget_overrun(self) -> float:
        """How far the frozen configuration exceeds θ (1.0 = on budget)."""
        return self.static_budget_packets / self.theta_packets

    @property
    def objective_gap(self) -> float:
        return self.reopt_objective - self.static_objective


@dataclass(frozen=True)
class DynamicResult:
    baseline_objective: float
    events: list[DynamicEventResult]

    def format(self) -> str:
        rows = [
            [
                e.label,
                e.static_objective,
                e.reopt_objective,
                e.static_worst_utility,
                e.reopt_worst_utility,
                f"{e.static_budget_overrun:.2f}x",
                e.reopt_iterations,
            ]
            for e in self.events
        ]
        return format_table(
            [
                "event", "static obj", "reopt obj", "static worst",
                "reopt worst", "static budget", "reopt iters",
            ],
            rows,
            title=(
                "Static vs re-optimized configuration "
                f"(baseline objective {self.baseline_objective:.3f})"
            ),
        )


def _evaluate_static(
    problem: SamplingProblem,
    rates_by_name: dict[str, float],
    task: MeasurementTask,
) -> tuple[float, float, float]:
    """Objective, worst utility and budget use of a frozen configuration."""
    rates = np.zeros(task.network.num_links)
    for link in task.network.links:
        rates[link.index] = rates_by_name.get(link.name, 0.0)
    objective = SumUtilityObjective(problem.routing, problem.utilities)
    utilities = objective.utilities_at(rates)
    budget = float(rates @ task.link_loads_pps) * task.interval_seconds
    return float(utilities.sum()), float(utilities.min()), budget


def run_dynamic(
    theta_packets: float = 100_000.0,
    anomaly_magnitude: float = 30.0,
    failed_circuit: tuple[str, str] = ("UK", "FR"),
) -> DynamicResult:
    """Run the static-vs-reoptimized scenario on the JANET task.

    Re-optimization runs through a :class:`WarmStartChain`: each event
    warm-starts from the previously deployed configuration (and falls
    back to a cold start across the topology-changing failure event),
    which is how an operator would actually roll re-optimization.
    """
    baseline = janet_task()
    baseline_problem = SamplingProblem.from_task(baseline, theta_packets)
    chain = WarmStartChain()
    baseline_solution = chain.solve(baseline_problem)
    names = [link.name for link in baseline.network.links]
    rates_by_name = {
        names[i]: float(baseline_solution.rates[i])
        for i in range(len(names))
    }

    # The smallest OD pair flashing 30x is the classic volume anomaly.
    anomaly_od = int(np.argmin(baseline.od_sizes_pps))
    scenario: list[tuple[str, MeasurementTask]] = [
        ("night (03:00)", scale_diurnal(baseline, 3.0)),
        ("morning (09:00)", scale_diurnal(baseline, 9.0)),
        (
            f"anomaly ({baseline.routing.od_pairs[anomaly_od].name} x"
            f"{anomaly_magnitude:g})",
            inject_anomaly(baseline, anomaly_od, anomaly_magnitude),
        ),
        (
            f"failure ({failed_circuit[0]}<->{failed_circuit[1]})",
            fail_link(baseline, *failed_circuit),
        ),
    ]

    events = []
    for label, task in scenario:
        problem = SamplingProblem.from_task(task, theta_packets).clamped()
        static_obj, static_worst, static_budget = _evaluate_static(
            problem, rates_by_name, task
        )
        reopt = chain.solve(problem)
        events.append(
            DynamicEventResult(
                label=label,
                static_objective=static_obj,
                static_worst_utility=static_worst,
                static_budget_packets=static_budget,
                reopt_objective=reopt.objective_value,
                reopt_worst_utility=float(reopt.od_utilities.min()),
                reopt_iterations=reopt.diagnostics.iterations,
                theta_packets=problem.theta_packets,
            )
        )
    return DynamicResult(
        baseline_objective=baseline_solution.objective_value, events=events
    )
