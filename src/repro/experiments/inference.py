"""Extension experiment: bootstrapping placement from tomogravity.

Before any sampling data exists, the only traffic knowledge an
operator has is SNMP link loads plus edge totals — the inputs of the
traffic-matrix-estimation literature the paper cites (§II).  This
experiment closes that gap: estimate the matrix by tomogravity, feed
the *estimated* JANET OD sizes to the placement optimizer, and measure
how much the resulting configuration underperforms the one computed
from true sizes when both are evaluated against the truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.objective import SumUtilityObjective
from ..core.problem import SamplingProblem
from ..core.solver import solve
from ..core.utility import accuracy_utilities
from ..inference.tomogravity import estimate_traffic_matrix
from ..traffic.workloads import MeasurementTask, janet_task
from .reporting import format_table

__all__ = ["InferenceResult", "run_inference"]


@dataclass(frozen=True)
class InferenceResult:
    """Placement quality: true sizes vs tomogravity-estimated sizes."""

    size_relative_errors: np.ndarray  # per JANET OD pair
    true_objective: float
    estimated_objective: float  # estimated-size config scored on truth
    tomography_residual: float

    @property
    def objective_gap_fraction(self) -> float:
        return (
            self.true_objective - self.estimated_objective
        ) / self.true_objective

    def format(self) -> str:
        rows = [
            ["median size error", f"{np.median(self.size_relative_errors):.1%}"],
            ["worst size error", f"{self.size_relative_errors.max():.1%}"],
            ["objective (true sizes)", f"{self.true_objective:.4f}"],
            ["objective (tomogravity sizes)", f"{self.estimated_objective:.4f}"],
            ["placement quality lost", f"{self.objective_gap_fraction:.3%}"],
            ["link-load residual", f"{self.tomography_residual:.2f} pkt/s"],
        ]
        return format_table(
            ["quantity", "value"], rows,
            title="Placement from tomogravity-estimated traffic (vs truth)",
        )


def run_inference(
    theta_packets: float = 100_000.0,
    ridge_lambda: float = 0.01,
    task: MeasurementTask | None = None,
) -> InferenceResult:
    """Run the tomogravity-bootstrap experiment on the JANET task."""
    task = task or janet_task()
    net = task.network

    # Observables: link loads plus per-node edge totals (the task OD
    # traffic enters through UK; background enters per gravity mass).
    egress: dict[str, float] = {name: 0.0 for name in net.node_names}
    ingress: dict[str, float] = {name: 0.0 for name in net.node_names}
    # Reconstruct node totals from the loads actually offered: route-
    # free accounting is not observable per-node in general, so use the
    # standard approximation — totals at the network edge.  For the
    # synthetic task these are derivable from the task definition.
    for od, pps in zip(task.routing.od_pairs, task.od_sizes_pps):
        egress[od.origin] += float(pps)
        ingress[od.destination] += float(pps)
    task_loads = task.routing.matrix.T @ task.od_sizes_pps
    background = task.link_loads_pps - task_loads
    # Approximate background edge totals by per-node incident loads.
    for link in net.links:
        egress[link.src] += float(background[link.index]) / max(
            1, net.degree(link.src)
        )
        ingress[link.dst] += float(background[link.index]) / max(
            1, len(net.in_links(link.dst))
        )

    estimate = estimate_traffic_matrix(
        net,
        task.link_loads_pps,
        egress,
        ingress,
        ridge_lambda=ridge_lambda,
    )

    estimated_sizes_pps = np.array(
        [
            max(estimate.demand(od.origin, od.destination), 1e-3)
            for od in task.routing.od_pairs
        ]
    )
    errors = (
        np.abs(estimated_sizes_pps - task.od_sizes_pps) / task.od_sizes_pps
    )

    # Placement from true sizes.
    true_problem = SamplingProblem.from_task(task, theta_packets)
    true_solution = solve(true_problem, method="slsqp")

    # Placement from estimated sizes (same loads — SNMP is observable).
    estimated_sizes_packets = estimated_sizes_pps * task.interval_seconds
    estimated_utilities = accuracy_utilities(
        np.minimum(1.0 / estimated_sizes_packets, 0.49)
    )
    estimated_problem = SamplingProblem(
        task.routing.matrix,
        task.link_loads_pps,
        theta_packets,
        estimated_utilities,
        interval_seconds=task.interval_seconds,
    )
    estimated_solution = solve(estimated_problem, method="slsqp")

    # Score both configurations against the TRUE utilities.
    true_objective_fn = SumUtilityObjective(
        task.routing.matrix, true_problem.utilities
    )
    return InferenceResult(
        size_relative_errors=errors,
        true_objective=float(true_objective_fn.value(true_solution.rates)),
        estimated_objective=float(
            true_objective_fn.value(estimated_solution.rates)
        ),
        tomography_residual=estimate.residual_norm,
    )
