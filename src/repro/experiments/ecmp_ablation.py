"""Extension experiment: single-path vs ECMP routing matrices.

The paper routes each OD pair on one path; production IGPs split over
equal-cost paths.  The formulation handles fractional routing rows
unchanged, but the *economics* change: an ECMP-split pair exposes only
a fraction of its packets to each monitor while every sampled budget
unit still pays the link's full cross-traffic load, so splitting can
make pairs more expensive to observe.  This experiment quantifies the
effect on GEANT: solve the JANET task under both routing models and
compare objectives, placements and per-OD effective rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution
from ..core.solver import solve
from ..routing.ecmp import ecmp_routing_matrix
from ..traffic.link_loads import add_od_loads, link_loads_from_traffic
from ..traffic.gravity import gravity_traffic_matrix
from ..traffic.workloads import (
    GEANT_POP_MASSES,
    MeasurementTask,
    janet_task,
)
from .reporting import format_table

__all__ = ["EcmpAblationResult", "run_ecmp_ablation"]


@dataclass(frozen=True)
class EcmpAblationResult:
    single: SamplingSolution
    ecmp: SamplingSolution
    split_od_names: list[str]  # OD pairs actually split by ECMP

    @property
    def objective_ratio(self) -> float:
        return self.ecmp.objective_value / self.single.objective_value

    def format(self) -> str:
        rows = [
            [
                "objective",
                self.single.objective_value,
                self.ecmp.objective_value,
            ],
            [
                "active monitors",
                self.single.num_active_monitors,
                self.ecmp.num_active_monitors,
            ],
            [
                "worst utility",
                float(self.single.od_utilities.min()),
                float(self.ecmp.od_utilities.min()),
            ],
            [
                "max rate",
                float(self.single.rates.max()),
                float(self.ecmp.rates.max()),
            ],
        ]
        table = format_table(
            ["quantity", "single-path", "ECMP"],
            rows,
            title="Routing-model ablation on the JANET task",
        )
        return (
            table
            + "\nECMP-split OD pairs: "
            + (", ".join(self.split_od_names) or "none")
        )


def run_ecmp_ablation(
    theta_packets: float = 100_000.0,
    task: MeasurementTask | None = None,
) -> EcmpAblationResult:
    """Solve the task under single-path and ECMP routing."""
    task = task or janet_task()
    single_problem = SamplingProblem.from_task(task, theta_packets)
    single = solve(single_problem)

    # Rebuild routing and loads under ECMP (both the task pairs and the
    # background must split consistently).
    net = task.network
    ecmp_routing = ecmp_routing_matrix(net, task.routing.od_pairs)
    background = gravity_traffic_matrix(
        net, 800_000.0, masses=GEANT_POP_MASSES
    )
    # Background still routed single-path: its exact spread matters far
    # less than the task pairs' exposure, which is the effect under test.
    loads = link_loads_from_traffic(net, background)
    loads = add_od_loads(loads, ecmp_routing, task.od_sizes_pps)
    ecmp_task = MeasurementTask(
        network=net,
        routing=ecmp_routing,
        od_sizes_pps=task.od_sizes_pps.copy(),
        link_loads_pps=loads,
        interval_seconds=task.interval_seconds,
        access_node=task.access_node,
    )
    ecmp_problem = SamplingProblem.from_task(ecmp_task, theta_packets)
    ecmp = solve(ecmp_problem)

    fractional = np.any(
        (ecmp_routing.matrix > 0) & (ecmp_routing.matrix < 1), axis=1
    )
    split_names = [
        od.name
        for od, is_split in zip(ecmp_routing.od_pairs, fractional)
        if is_split
    ]
    return EcmpAblationResult(single=single, ecmp=ecmp, split_od_names=split_names)
