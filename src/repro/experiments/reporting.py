"""Shared formatting helpers for experiment reports.

Experiments print paper-style tables and series to stdout; these
helpers keep the formatting consistent and dependency-free (no
plotting libraries — series are emitted as aligned columns ready for
any plotting tool, plus a coarse ASCII preview).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_series", "ascii_plot"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.5f}"
    return str(value)


def format_series(
    x_label: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render several y-series against a shared x-axis as columns."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def ascii_plot(
    x_values: Sequence[float],
    y_values: Sequence[float],
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """A coarse ASCII scatter of one series (quick visual check)."""
    if len(x_values) != len(y_values) or not x_values:
        raise ValueError("need equally many x and y values")
    x_min, x_max = min(x_values), max(x_values)
    y_min, y_max = min(y_values), max(y_values)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(x_values, y_values):
        col = int((x - x_min) / x_span * (width - 1))
        row = height - 1 - int((y - y_min) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = [label] if label else []
    lines.append(f"{y_max:10.4g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.4g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + f"{x_min:<10.4g}" + " " * max(0, width - 20) + f"{x_max:>10.4g}")
    return "\n".join(lines)
