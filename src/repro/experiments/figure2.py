"""Figure 2: measurement accuracy versus capacity θ, optimal vs UK-only.

The second naive solution of §V-C monitors only the six links leaving
the UK PoP.  The paper sweeps the capacity θ and plots, for both the
network-wide optimum and the UK-links-restricted optimum, the average,
worst and best per-OD accuracy.  The restricted solution collapses on
small OD pairs — the UK links are heavily loaded, so giving a small
pair a usable effective rate there devours the budget — while the
network-wide optimum finds cheap lightly-loaded links deeper in the
network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batch import solve_theta_sweep
from ..core.problem import SamplingProblem
from ..sampling.simulator import SamplingExperiment
from ..traffic.workloads import MeasurementTask, janet_task
from .reporting import format_series

__all__ = ["Figure2Point", "Figure2Result", "run_figure2"]

#: Default θ sweep (packets per 5-minute interval), log-spaced.
DEFAULT_THETAS = tuple(float(t) for t in np.geomspace(5_000, 2_000_000, 9))
DEFAULT_RUNS = 20


@dataclass(frozen=True)
class Figure2Point:
    """Accuracy statistics of one configuration at one capacity."""

    theta_packets: float
    average: float
    worst: float
    best: float


@dataclass(frozen=True)
class Figure2Result:
    """Both accuracy-vs-θ series."""

    optimal: list[Figure2Point]
    restricted: list[Figure2Point]
    restricted_links: list[str]

    def format(self) -> str:
        thetas = [p.theta_packets for p in self.optimal]
        series = {
            "avg(opt)": [p.average for p in self.optimal],
            "worst(opt)": [p.worst for p in self.optimal],
            "best(opt)": [p.best for p in self.optimal],
            "avg(UK)": [p.average for p in self.restricted],
            "worst(UK)": [p.worst for p in self.restricted],
            "best(UK)": [p.best for p in self.restricted],
        }
        table = format_series(
            "theta", thetas, series,
            title="Figure 2 — accuracy vs capacity, optimal vs UK-links-only",
        )
        return table + "\nrestricted to: " + ", ".join(self.restricted_links)


def _evaluate(
    task: MeasurementTask,
    rates: np.ndarray,
    theta: float,
    runs: int,
    seed: int,
) -> Figure2Point:
    experiment = SamplingExperiment(
        task.routing.matrix, task.od_sizes_packets, deduplicate=True
    )
    result = experiment.run(rates, runs=runs, seed=seed)
    return Figure2Point(
        theta_packets=theta,
        average=result.average_accuracy,
        worst=result.worst_od_accuracy,
        best=result.best_od_accuracy,
    )


def run_figure2(
    thetas: tuple[float, ...] = DEFAULT_THETAS,
    runs: int = DEFAULT_RUNS,
    seed: int = 2006,
    task: MeasurementTask | None = None,
    method: str = "gradient_projection",
    presolve: bool = True,
) -> Figure2Result:
    """Sweep θ and evaluate both configurations by Monte-Carlo sampling.

    Capacities beyond what a configuration's candidate links can absorb
    are clamped to saturation (the configuration simply cannot use more
    budget), which is how the restricted curve plateaus.  Each sweep
    runs through :func:`~repro.core.batch.solve_theta_sweep`, so
    adjacent capacities warm-start each other; ``presolve`` (default)
    additionally reduces each topology once per sweep — the restricted
    sweep in particular drops every non-UK link from the decision
    space.  Both paths produce identical objectives (the reduction is
    exact), so the figure is unchanged either way.
    """
    task = task or janet_task()
    if task.access_node is None:
        raise ValueError("figure 2 needs a task with an access node")
    uk_links = task.access_link_indices()
    names = [task.network.links[i].name for i in uk_links]

    base = SamplingProblem.from_task(task, thetas[0])
    optimal = solve_theta_sweep(base, thetas, method=method, presolve=presolve)
    restricted = solve_theta_sweep(
        base.restrict_monitors(uk_links), thetas, method=method,
        presolve=presolve,
    )

    optimal_points: list[Figure2Point] = []
    restricted_points: list[Figure2Point] = []
    for index, theta in enumerate(thetas):
        optimal_points.append(
            _evaluate(task, optimal[index].rates, theta, runs, seed + index)
        )
        restricted_points.append(
            _evaluate(
                task, restricted[index].rates, theta, runs, seed + 1000 + index
            )
        )
    return Figure2Result(
        optimal=optimal_points,
        restricted=restricted_points,
        restricted_links=names,
    )
