"""Table I: optimal sampling rates for the JANET measurement task.

The paper's headline table: for θ = 100 000 packets per 5-minute
interval and no per-link cap (α_i = 1), the optimal solution activates
only a handful of GEANT's 72 monitors, sets extremely low rates (the
highest, ~1 %, on lightly loaded links needed for the two smallest OD
pairs), samples each OD pair on at most a couple of links, and still
achieves balanced utilities with average accuracy above ~0.89 on
every OD pair.

This module regenerates the table over the synthetic GEANT workload:
per-OD rows (size, monitored links with rates, utility, Monte-Carlo
accuracy) and per-link footer rows (load, contribution to θ).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution
from ..core.solver import solve
from ..sampling.simulator import SamplingExperiment
from ..traffic.workloads import MeasurementTask, janet_task
from .reporting import format_table

__all__ = ["Table1Row", "Table1Result", "run_table1"]

#: Paper parameters.
DEFAULT_THETA_PACKETS = 100_000.0
DEFAULT_ACCURACY_RUNS = 20


@dataclass(frozen=True)
class Table1Row:
    """One OD pair's line of Table I."""

    od_name: str
    size_pps: float
    monitored_links: dict[str, float]  # link name -> sampling rate
    utility: float
    accuracy: float


@dataclass(frozen=True)
class Table1Result:
    """The regenerated Table I."""

    task: MeasurementTask
    solution: SamplingSolution
    rows: list[Table1Row]
    link_rates: dict[str, float]
    link_loads: dict[str, float]
    link_contributions: dict[str, float]

    @property
    def average_accuracy(self) -> float:
        return float(np.mean([row.accuracy for row in self.rows]))

    @property
    def worst_accuracy(self) -> float:
        return float(min(row.accuracy for row in self.rows))

    @property
    def max_rate(self) -> float:
        return float(max(self.link_rates.values(), default=0.0))

    @property
    def max_monitors_per_od(self) -> int:
        return int(self.solution.monitors_per_od().max())

    def format(self) -> str:
        od_rows = [
            [
                row.od_name,
                row.size_pps,
                "; ".join(
                    f"{name}:{rate:.5f}"
                    for name, rate in sorted(row.monitored_links.items())
                ),
                row.utility,
                row.accuracy,
            ]
            for row in self.rows
        ]
        od_table = format_table(
            ["OD pair", "pkt/s", "monitored on (rate)", "utility", "accuracy"],
            od_rows,
            title=(
                "Table I — optimal sampling rates, theta = "
                f"{self.solution.problem.theta_packets:,.0f} pkts / "
                f"{self.solution.problem.interval_seconds:.0f} s"
            ),
        )
        link_rows = [
            [
                name,
                self.link_rates[name],
                self.link_loads[name],
                f"{self.link_contributions[name]:.1%}",
            ]
            for name in sorted(
                self.link_rates, key=lambda n: -self.link_contributions[n]
            )
        ]
        link_table = format_table(
            ["active link", "rate p_i", "load (pkt/s)", "share of theta"],
            link_rows,
        )
        summary = (
            f"active monitors: {len(self.link_rates)} / "
            f"{self.task.network.num_links}   "
            f"max rate: {self.max_rate:.5f}   "
            f"max monitors/OD: {self.max_monitors_per_od}   "
            f"avg accuracy: {self.average_accuracy:.3f}   "
            f"worst accuracy: {self.worst_accuracy:.3f}"
        )
        return "\n\n".join([od_table, link_table, summary])


def run_table1(
    theta_packets: float = DEFAULT_THETA_PACKETS,
    alpha: float = 1.0,
    runs: int = DEFAULT_ACCURACY_RUNS,
    seed: int = 2006,
    method: str = "gradient_projection",
    task: MeasurementTask | None = None,
) -> Table1Result:
    """Solve the JANET task and evaluate it like the paper's Table I.

    ``runs`` sampling experiments (paper: 20) are simulated at the
    optimal rates; the per-OD average accuracy fills the last column.
    """
    task = task or janet_task()
    problem = SamplingProblem.from_task(task, theta_packets, alpha=alpha)
    solution = solve(problem, method=method)

    experiment = SamplingExperiment(
        task.routing.matrix, task.od_sizes_packets, deduplicate=True
    )
    result = experiment.run(solution.rates, runs=runs, seed=seed)
    mean_accuracy = result.mean_accuracy

    names = [link.name for link in task.network.links]
    active = solution.active_link_indices
    utilities = solution.od_utilities

    rows = []
    for k, od in enumerate(task.routing.od_pairs):
        monitored = {
            names[i]: float(solution.rates[i])
            for i in active
            if task.routing.matrix[k, i] > 0
        }
        rows.append(
            Table1Row(
                od_name=od.name,
                size_pps=float(task.od_sizes_pps[k]),
                monitored_links=monitored,
                utility=float(utilities[k]),
                accuracy=float(mean_accuracy[k]),
            )
        )

    contributions = solution.contribution_fractions
    return Table1Result(
        task=task,
        solution=solution,
        rows=rows,
        link_rates={names[i]: float(solution.rates[i]) for i in active},
        link_loads={names[i]: float(task.link_loads_pps[i]) for i in active},
        link_contributions={names[i]: float(contributions[i]) for i in active},
    )
