"""Extension experiment: topology generality (§V-C's closing claim).

"Several studies have shown that this is a general property of current
network design, and we argue that the benefits are not limited to the
specific network topology under consideration in this work."

This experiment runs the identical protocol — single-origin task with
a heavy-tailed OD size spectrum, gravity background, θ scaled to the
offered load — on three real topologies (GEANT, Abilene, NSFNET) and
reports the structural signature of the optimal solution on each:
sparse placement, sub-percent rates, balanced utilities, and a clear
margin over uniform sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.uniform import uniform_solution
from ..core.problem import SamplingProblem
from ..core.solver import solve
from ..routing.routing_matrix import ODPair
from ..topology.abilene import abilene_network
from ..topology.geant import geant_network
from ..topology.graph import Network
from ..topology.nsfnet import nsfnet_network
from ..traffic.workloads import MeasurementTask, janet_task, make_task
from .reporting import format_table

__all__ = ["GeneralityRow", "GeneralityResult", "run_generality"]

#: Origin PoP per topology (a well-connected edge of each map).
_ORIGINS = {"GEANT-2004": "UK", "Abilene-2004": "NYC", "NSFNET-1991": "WA"}


@dataclass(frozen=True)
class GeneralityRow:
    """Structural signature of the optimum on one topology."""

    topology: str
    num_links: int
    active_monitors: int
    max_rate: float
    worst_utility: float
    utility_spread: float  # max - min utility (fairness)
    uniform_worst_utility: float  # same budget, uniform rates

    @property
    def active_fraction(self) -> float:
        return self.active_monitors / self.num_links


@dataclass(frozen=True)
class GeneralityResult:
    rows: list[GeneralityRow]

    def format(self) -> str:
        table_rows = [
            [
                row.topology,
                f"{row.active_monitors}/{row.num_links}",
                row.max_rate,
                row.worst_utility,
                row.utility_spread,
                row.uniform_worst_utility,
            ]
            for row in self.rows
        ]
        return format_table(
            [
                "topology", "monitors", "max rate", "worst utility",
                "utility spread", "uniform worst",
            ],
            table_rows,
            title="Topology generality: the optimum's structure on three maps",
        )


def _single_origin_task(net: Network, origin: str, seed: int) -> MeasurementTask:
    """A JANET-shaped task: origin to every other PoP, log-spread sizes."""
    destinations = [name for name in net.node_names if name != origin]
    sizes = np.geomspace(30_000.0, 20.0, num=len(destinations))
    od_pairs = [
        ODPair(origin, dst, label=f"{origin}-{dst}") for dst in destinations
    ]
    return make_task(
        net,
        od_pairs,
        sizes,
        background_pps=800_000.0,
        seed=seed,
        access_node=origin,
    )


def run_generality(theta_packets: float = 100_000.0, seed: int = 7) -> GeneralityResult:
    """Run the single-origin protocol on GEANT, Abilene and NSFNET."""
    rows = []
    for net in (geant_network(), abilene_network(), nsfnet_network()):
        origin = _ORIGINS[net.name]
        if net.name == "GEANT-2004":
            task = janet_task()
        else:
            task = _single_origin_task(net, origin, seed)
        problem = SamplingProblem.from_task(task, theta_packets).clamped()
        solution = solve(problem)
        uniform = uniform_solution(problem)
        utilities = solution.od_utilities
        rows.append(
            GeneralityRow(
                topology=net.name,
                num_links=net.num_links,
                active_monitors=solution.num_active_monitors,
                max_rate=float(solution.rates.max()),
                worst_utility=float(utilities.min()),
                utility_spread=float(utilities.max() - utilities.min()),
                uniform_worst_utility=float(uniform.od_utilities.min()),
            )
        )
    return GeneralityResult(rows=rows)
