"""Central seeded randomness for reproducible runs.

Every stochastic component of the package draws its generator through
:func:`default_rng` so that one ``--seed`` flag on the CLI pins the
whole run.  The resolution order is:

1. an explicit ``seed`` argument at the call site (tests, notebooks);
2. the ambient default installed by :func:`set_default_seed`
   (plumbed from ``netsampling experiments --seed`` /
   ``netsampling verify --seed``);
3. the package default ``2006`` (the paper's year — the seed the
   experiment modules have always used), so runs are deterministic
   even when nobody asks for a seed.

Components that accept a ``numpy.random.Generator`` directly are
unaffected: this module only governs where fresh generators come from.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_SEED",
    "default_rng",
    "get_default_seed",
    "set_default_seed",
    "derive_seed",
]

#: The package-wide fallback seed (the paper's publication year).
DEFAULT_SEED = 2006

_ambient_seed: int = DEFAULT_SEED


def set_default_seed(seed: int | None) -> None:
    """Install the ambient seed used when call sites pass ``seed=None``.

    ``None`` restores the package default.  Called once per process by
    the CLI before any experiment or verification work runs.
    """
    global _ambient_seed
    _ambient_seed = DEFAULT_SEED if seed is None else int(seed)


def get_default_seed() -> int:
    """The currently installed ambient seed."""
    return _ambient_seed


def default_rng(seed: int | None = None) -> np.random.Generator:
    """A :class:`numpy.random.Generator` under the resolution order above."""
    return np.random.default_rng(_ambient_seed if seed is None else int(seed))


def derive_seed(seed: int | None, stream: int) -> int:
    """A reproducible child seed for an independent sub-stream.

    Components that need several independent generators from one user
    seed (e.g. the verification suite's per-instance generators) derive
    them with distinct ``stream`` indices instead of reusing the parent
    seed — reuse would correlate the streams.
    """
    base = _ambient_seed if seed is None else int(seed)
    child = np.random.SeedSequence(entropy=base, spawn_key=(int(stream),))
    return int(child.generate_state(1, dtype=np.uint64)[0] % (2**63))
