"""Traffic-matrix inference (tomogravity) — the §II-adjacent substrate."""

from .tomogravity import (
    TomogravityEstimate,
    all_od_pairs,
    estimate_traffic_matrix,
    gravity_prior,
)

__all__ = [
    "all_od_pairs",
    "gravity_prior",
    "estimate_traffic_matrix",
    "TomogravityEstimate",
]
