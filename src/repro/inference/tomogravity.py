"""Traffic-matrix estimation from link loads (tomogravity).

The paper positions itself against the traffic-matrix-estimation
literature (§II: Medina et al., Zhang et al., Soule et al.): those
works *infer* OD demands from partial information such as SNMP link
loads, while the paper *measures* them with optimally placed sampling.
The two are complementary in operation — an inferred matrix is exactly
what bootstraps the optimizer before any sampling data exists — so we
implement the standard tomogravity pipeline:

1. **gravity prior**: spread each origin's total egress over the
   destinations proportionally to their ingress totals
   (`gravity_prior`);
2. **tomography step**: the link loads satisfy ``A x = U`` where ``A``
   is the routing matrix over *all* OD pairs — an underdetermined
   system.  Regularize toward the prior (ridge):

       minimize ‖A x − U‖² + λ ‖x − x_prior‖²,   then clip x ≥ 0

   solved in closed form via a stacked least-squares system
   (`estimate_traffic_matrix`).

The extension experiment feeds the estimated matrix to the placement
optimizer and measures how much the placement quality suffers compared
to using the true sizes (`experiments.inference`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..routing.routing_matrix import ODPair, RoutingMatrix
from ..routing.shortest_path import ShortestPathRouter
from ..topology.graph import Network
from ..traffic.matrix import TrafficMatrix

__all__ = [
    "all_od_pairs",
    "gravity_prior",
    "TomogravityEstimate",
    "estimate_traffic_matrix",
]


def all_od_pairs(net: Network) -> list[ODPair]:
    """Every ordered node pair — the unknowns of the tomography."""
    names = net.node_names
    return [
        ODPair(o, d) for o in names for d in names if o != d
    ]


def gravity_prior(
    net: Network,
    egress_totals: dict[str, float],
    ingress_totals: dict[str, float],
) -> TrafficMatrix:
    """Gravity estimate from per-node totals.

    ``t(o, d) = egress(o) · ingress(d) / Σ ingress`` with the diagonal
    removed and each row rescaled to preserve the origin's egress total
    — the standard simple-gravity construction.
    """
    missing = (set(egress_totals) | set(ingress_totals)) - set(net.node_names)
    if missing:
        raise KeyError(f"totals for unknown nodes: {sorted(missing)}")
    if any(v < 0 for v in egress_totals.values()) or any(
        v < 0 for v in ingress_totals.values()
    ):
        raise ValueError("totals must be non-negative")

    tm = TrafficMatrix(net)
    for origin in net.node_names:
        egress = float(egress_totals.get(origin, 0.0))
        if egress <= 0:
            continue
        weights = {
            dst: float(ingress_totals.get(dst, 0.0))
            for dst in net.node_names
            if dst != origin
        }
        total_weight = sum(weights.values())
        if total_weight <= 0:
            continue
        for dst, weight in weights.items():
            if weight > 0:
                tm.set_demand(origin, dst, egress * weight / total_weight)
    return tm


@dataclass(frozen=True)
class TomogravityEstimate:
    """The estimated matrix plus reconstruction diagnostics."""

    traffic_matrix: TrafficMatrix
    od_pairs: list[ODPair]
    estimated_pps: np.ndarray
    residual_norm: float  # ||A x - U|| after the solve

    def demand(self, origin: str, destination: str) -> float:
        return self.traffic_matrix.demand(origin, destination)


def estimate_traffic_matrix(
    net: Network,
    link_loads_pps: np.ndarray,
    egress_totals: dict[str, float],
    ingress_totals: dict[str, float],
    ridge_lambda: float = 0.01,
    router: ShortestPathRouter | None = None,
) -> TomogravityEstimate:
    """Tomogravity: gravity prior refined by the link-load tomography.

    Parameters
    ----------
    net, link_loads_pps:
        Topology and observed per-link loads (SNMP).
    egress_totals, ingress_totals:
        Per-node traffic totals (observable at the network edge).
    ridge_lambda:
        Strength of the pull toward the gravity prior, relative to the
        tomographic fit (both sides are normalized by their scale).
    """
    loads = np.asarray(link_loads_pps, dtype=float)
    if loads.shape != (net.num_links,):
        raise ValueError("loads do not match link count")
    if ridge_lambda <= 0:
        raise ValueError("ridge lambda must be positive")

    router = router or ShortestPathRouter(net)
    pairs = all_od_pairs(net)
    routing = RoutingMatrix.from_shortest_paths(net, pairs, router=router)
    a_matrix = routing.matrix  # (P x L) — note: x indexes pairs, U links

    prior_tm = gravity_prior(net, egress_totals, ingress_totals)
    prior = np.array([prior_tm.demand(p.origin, p.destination) for p in pairs])

    # Normalize both objectives so lambda is scale-free.
    load_scale = max(float(np.abs(loads).max()), 1.0)
    prior_scale = max(float(np.abs(prior).max()), 1.0)
    a_scaled = a_matrix.T / load_scale  # (L x P)
    u_scaled = loads / load_scale
    sqrt_lam = np.sqrt(ridge_lambda) / prior_scale

    stacked = np.vstack([a_scaled, sqrt_lam * np.eye(len(pairs))])
    target = np.concatenate([u_scaled, sqrt_lam * prior])
    solution, *_ = np.linalg.lstsq(stacked, target, rcond=None)
    estimated = np.maximum(solution, 0.0)

    residual = float(np.linalg.norm(a_matrix.T @ estimated - loads))
    tm = TrafficMatrix(net)
    for pair, pps in zip(pairs, estimated):
        if pps > 0:
            tm.set_demand(pair.origin, pair.destination, float(pps))
    return TomogravityEstimate(
        traffic_matrix=tm,
        od_pairs=pairs,
        estimated_pps=estimated,
        residual_norm=residual,
    )
