"""Two-phase heuristic in the style of Suh et al. (§II).

Suh et al. (Infocom 2006) first choose *where* to monitor, then run a
second optimization to set the rates — in contrast to the paper's
joint formulation.  We implement that comparator: phase 1 greedily
selects a monitor set, phase 2 distributes the capacity optimally over
the selected set (re-using the convex solver, which is generous to the
heuristic).  Its gap to the joint optimum is what the paper's "our
approach allows to indicate whether a solution corresponds to the
global optimum" claim is about.

Two phase-1 scoring rules:

* ``"density"`` — rank links by task traffic per unit of budget cost
  (``Σ_k r_{k,i} S_k / U_i``), the natural "cheap coverage" rule;
* ``"coverage"`` — classic greedy set cover: repeatedly add the link
  observing the most not-yet-covered OD pairs, breaking ties by
  density.
"""

from __future__ import annotations

import numpy as np

from ..core.gradient_projection import GradientProjectionOptions
from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution
from .restricted import solve_restricted

__all__ = ["greedy_placement", "two_phase_solution"]

_SCORING_RULES = ("density", "coverage")


def greedy_placement(
    problem: SamplingProblem,
    num_monitors: int,
    od_sizes_packets: np.ndarray,
    scoring: str = "coverage",
) -> list[int]:
    """Phase 1: pick ``num_monitors`` links for the monitor set."""
    if scoring not in _SCORING_RULES:
        raise ValueError(f"scoring must be one of {_SCORING_RULES}")
    if num_monitors < 1:
        raise ValueError("need at least one monitor")
    sizes = np.asarray(od_sizes_packets, dtype=float)
    if sizes.shape != (problem.num_od_pairs,):
        raise ValueError("od sizes do not match problem")

    candidates = np.flatnonzero(problem.candidate_mask)
    loads = problem.link_loads_pps
    routing = problem.routing
    density = {
        int(i): float(routing[:, i] @ sizes) / float(loads[i]) for i in candidates
    }

    if scoring == "density":
        ranked = sorted(density, key=lambda i: -density[i])
        return ranked[:num_monitors]

    chosen: list[int] = []
    covered = np.zeros(problem.num_od_pairs, dtype=bool)
    remaining = set(int(i) for i in candidates)
    while len(chosen) < num_monitors and remaining:
        def gain(i: int) -> tuple[int, float]:
            newly = (routing[:, i] > 0) & ~covered
            return int(newly.sum()), density[i]

        best = max(remaining, key=gain)
        chosen.append(best)
        remaining.discard(best)
        covered |= routing[:, best] > 0
    return chosen


def two_phase_solution(
    problem: SamplingProblem,
    num_monitors: int,
    od_sizes_packets: np.ndarray,
    scoring: str = "coverage",
    options: GradientProjectionOptions | None = None,
) -> SamplingSolution:
    """Phase 1 placement + phase 2 optimal rates on the chosen set."""
    placement = greedy_placement(
        problem, num_monitors, od_sizes_packets, scoring=scoring
    )
    return solve_restricted(problem, placement, options=options)
