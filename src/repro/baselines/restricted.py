"""Restricted-link-set optimization (§V-C's second naive solution).

"Monitor all links that connect the UK PoP to the other PoPs": run the
*same* optimal algorithm, but with the choice of monitors restricted
to a given link set.  Figure 2 compares this against the network-wide
optimum over a range of capacities — the restriction hurts exactly
where the paper predicts, on small OD pairs that the heavily loaded
restricted links can only track at a disproportionate budget cost.
"""

from __future__ import annotations

from typing import Iterable

from ..core.gradient_projection import GradientProjectionOptions
from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution
from ..core.solver import solve

__all__ = ["solve_restricted", "node_adjacent_link_indices"]


def solve_restricted(
    problem: SamplingProblem,
    link_indices: Iterable[int],
    method: str = "gradient_projection",
    options: GradientProjectionOptions | None = None,
    clamp_theta: bool = True,
    presolve: bool = False,
) -> SamplingSolution:
    """Optimize with monitors restricted to ``link_indices``.

    With ``clamp_theta`` (default) a capacity exceeding what the
    restricted set can absorb (``Σ α_i U_i`` over the set) is clamped
    to that maximum — the natural semantics for capacity sweeps, where
    the restricted configuration simply saturates.  Restricted problems
    benefit disproportionately from ``presolve``: every excluded link
    is eliminated from the decision space before the solver starts.
    """
    restricted = problem.restrict_monitors(link_indices)
    if clamp_theta:
        restricted = restricted.clamped()
    return solve(restricted, method=method, options=options, presolve=presolve)


def node_adjacent_link_indices(problem_network, node: str) -> list[int]:
    """Indices of the links leaving ``node`` (the "UK links" set)."""
    return [link.index for link in problem_network.out_links(node)]
