"""Uniform network-wide sampling — what ISPs deploy today (§I).

"Enable Netflow on all routers but using very low sampling rates":
every candidate link gets the same rate, chosen so the configuration
consumes exactly the capacity θ (links whose bound α is lower are
clamped, the rest absorb the remainder — water-filling).
"""

from __future__ import annotations

import numpy as np

from ..core.gradient_projection import initial_feasible_point
from ..core.objective import SumUtilityObjective
from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution, SolverDiagnostics

__all__ = ["uniform_solution"]


def uniform_solution(problem: SamplingProblem) -> SamplingSolution:
    """All-links-on configuration at a single uniform sampling rate."""
    problem.check_feasible()
    cand = np.flatnonzero(problem.candidate_mask)
    loads = problem.link_loads_pps[cand]
    alpha = problem.alpha[cand]
    x = initial_feasible_point(loads, alpha, problem.theta_rate_pps)

    rates = np.zeros(problem.num_links)
    rates[cand] = x
    rates[problem.free_saturated_mask] = problem.alpha[problem.free_saturated_mask]

    objective = SumUtilityObjective(
        problem.candidate_routing_op(), problem.utilities
    )
    diagnostics = SolverDiagnostics(
        method="baseline:uniform",
        iterations=0,
        constraint_releases=0,
        converged=True,
        objective_value=objective.value(x),
        message="uniform rate on all candidate links",
    )
    return SamplingSolution(problem=problem, rates=rates, diagnostics=diagnostics)
