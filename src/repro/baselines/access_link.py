"""The access-link naive solution (§V-C).

Monitor only the JANET access link: every sampled packet belongs to an
OD pair of interest, but all pairs share one sampling rate
``p = θ' / U_access``, so tracking the smallest OD pair accurately
forces a rate — and hence a capacity — dictated by the *entire* access
load.  The paper quantifies the penalty: matching the optimum's
accuracy on JANET→LU would need ~70 % more capacity θ.

The access link is outside the monitorable set (§V-C: CPE routers
belong to the ISP), so this baseline is evaluated analytically rather
than through :class:`SamplingProblem`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.problem import SamplingProblem

__all__ = ["AccessLinkSolution", "access_link_solution", "capacity_to_match_rate"]


@dataclass(frozen=True)
class AccessLinkSolution:
    """Sampling the single ingress link at one rate.

    ``effective_rates`` equals the access rate for every OD pair —
    the configuration cannot differentiate between pairs.
    """

    access_rate: float
    access_load_pps: float
    theta_packets: float
    interval_seconds: float
    od_utilities: np.ndarray

    @property
    def effective_rates(self) -> np.ndarray:
        return np.full(self.od_utilities.shape, self.access_rate)

    @property
    def objective_value(self) -> float:
        return float(self.od_utilities.sum())

    @property
    def budget_used_packets(self) -> float:
        return self.access_rate * self.access_load_pps * self.interval_seconds


def access_link_solution(
    problem: SamplingProblem, access_load_pps: float
) -> AccessLinkSolution:
    """Spend the whole capacity θ on the access link.

    ``access_load_pps`` is the ingress load (for a single-origin task:
    the sum of the OD sizes, plus any other traffic the origin sends).
    """
    if access_load_pps <= 0:
        raise ValueError("access load must be positive")
    rate = min(1.0, problem.theta_rate_pps / access_load_pps)
    utilities = np.array([u.value(rate) for u in problem.utilities])
    return AccessLinkSolution(
        access_rate=rate,
        access_load_pps=access_load_pps,
        theta_packets=problem.theta_packets,
        interval_seconds=problem.interval_seconds,
        od_utilities=utilities,
    )


def capacity_to_match_rate(
    target_effective_rate: float,
    access_load_pps: float,
    interval_seconds: float,
) -> float:
    """Capacity θ (packets/interval) the access link needs for a rate.

    To give *any* OD pair effective rate ``ρ*``, the access link must
    sample at ``p = ρ*`` and therefore absorb ``ρ* · U_access · T``
    packets per interval — the paper's footnote-2 computation (1 % of
    57 933 pkt/s over 5 min ⇒ 173 798 packets, ~70 % above the
    optimum's θ = 100 000).
    """
    if not 0.0 < target_effective_rate <= 1.0:
        raise ValueError("target effective rate must be in (0, 1]")
    if access_load_pps <= 0 or interval_seconds <= 0:
        raise ValueError("load and interval must be positive")
    return target_effective_rate * access_load_pps * interval_seconds
