"""Placement under a monitor-count budget.

The paper's formulation counts resources in sampled packets (θ); real
deployments often also cap the *number* of configured monitors (each
NetFlow config is operational overhead).  With a cardinality cap the
problem becomes combinatorial (the paper notes the placement core is
NP-hard); we provide the standard high-quality heuristic:

* solve the unconstrained convex problem — its active set is a natural
  superset of good placements;
* while too many monitors are active, **backward-eliminate**: drop the
  monitor whose removal (followed by re-optimizing the rates over the
  survivors) costs the least objective.

Each candidate removal is evaluated with a full convex solve, so the
search is greedy only over the *placement*, never the rates — the same
split the two-phase baseline uses, but started from the joint optimum
instead of a coverage score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.gradient_projection import GradientProjectionOptions
from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution
from ..core.solver import solve
from .restricted import solve_restricted

__all__ = [
    "CardinalityResult",
    "solve_with_monitor_budget",
    "DeploymentStep",
    "deployment_order",
]


@dataclass(frozen=True)
class CardinalityResult:
    """Outcome of the backward-elimination search."""

    solution: SamplingSolution
    monitor_indices: list[int]
    eliminated: list[int]  # removal order, cheapest-to-drop first
    unconstrained_objective: float

    @property
    def objective_cost(self) -> float:
        """Objective given up relative to the unconstrained optimum."""
        return self.unconstrained_objective - self.solution.objective_value


@dataclass(frozen=True)
class DeploymentStep:
    """One step of an incremental monitor rollout."""

    num_monitors: int
    monitor_indices: list[int]
    objective: float
    fraction_of_optimum: float


def deployment_order(
    problem: SamplingProblem,
    options: GradientProjectionOptions | None = None,
) -> list[DeploymentStep]:
    """Incremental rollout plan: which monitors to enable first.

    Runs backward elimination all the way down to one monitor; reading
    the elimination order *backwards* gives a deployment priority: the
    last survivor is the single most valuable monitor, and each step
    reports the objective achievable with that prefix deployed (rates
    re-optimized, capacity clamped to what the prefix can absorb).

    Operators use the ``fraction_of_optimum`` column to decide where to
    stop a staged rollout.
    """
    unconstrained = solve(problem, options=options)
    steps: list[DeploymentStep] = []
    for k in range(1, unconstrained.num_active_monitors + 1):
        result = solve_with_monitor_budget(problem, k, options=options)
        steps.append(
            DeploymentStep(
                num_monitors=k,
                monitor_indices=sorted(result.monitor_indices),
                objective=result.solution.objective_value,
                fraction_of_optimum=(
                    result.solution.objective_value
                    / unconstrained.objective_value
                ),
            )
        )
    return steps


def solve_with_monitor_budget(
    problem: SamplingProblem,
    max_monitors: int,
    options: GradientProjectionOptions | None = None,
) -> CardinalityResult:
    """Best configuration using at most ``max_monitors`` monitors."""
    if max_monitors < 1:
        raise ValueError("need at least one monitor")
    unconstrained = solve(problem, options=options)
    active = list(unconstrained.active_link_indices)
    eliminated: list[int] = []

    if len(active) <= max_monitors:
        return CardinalityResult(
            solution=unconstrained,
            monitor_indices=active,
            eliminated=[],
            unconstrained_objective=unconstrained.objective_value,
        )

    current = unconstrained
    while len(active) > max_monitors:
        best_solution: SamplingSolution | None = None
        best_drop: int | None = None
        for index in active:
            survivors = [i for i in active if i != index]
            candidate = solve_restricted(
                problem, survivors, options=options, clamp_theta=True
            )
            if (
                best_solution is None
                or candidate.objective_value > best_solution.objective_value
            ):
                best_solution = candidate
                best_drop = index
        assert best_solution is not None and best_drop is not None
        active.remove(best_drop)
        eliminated.append(best_drop)
        current = best_solution
        # Re-optimization may itself deactivate further monitors.
        active = [i for i in active if current.rates[i] > 1e-9]

    return CardinalityResult(
        solution=current,
        monitor_indices=active,
        eliminated=eliminated,
        unconstrained_objective=unconstrained.objective_value,
    )
