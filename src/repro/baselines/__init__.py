"""Baseline monitoring strategies the paper compares against."""

from .access_link import (
    AccessLinkSolution,
    access_link_solution,
    capacity_to_match_rate,
)
from .cardinality import (
    CardinalityResult,
    DeploymentStep,
    deployment_order,
    solve_with_monitor_budget,
)
from .greedy import greedy_placement, two_phase_solution
from .restricted import node_adjacent_link_indices, solve_restricted
from .uniform import uniform_solution

__all__ = [
    "uniform_solution",
    "access_link_solution",
    "AccessLinkSolution",
    "capacity_to_match_rate",
    "solve_restricted",
    "node_adjacent_link_indices",
    "greedy_placement",
    "two_phase_solution",
    "solve_with_monitor_budget",
    "CardinalityResult",
    "deployment_order",
    "DeploymentStep",
]
