"""Lightweight process-local metrics: counters, gauges, timers, histograms.

The registry is the instrumentation primitive of the observability
layer: hot-path call sites (routing matvecs, objective memo lookups,
batch warm starts) increment named counters through the module-level
:data:`METRICS` singleton.  Collection is **off by default** — a
disabled registry's ``increment``/``gauge``/``observe_timer``/
``observe_histogram`` return after one attribute check, so the solver's
inner loop pays essentially nothing until someone opts in via
:func:`enable_metrics` or the :func:`collecting_metrics` context
manager.

All mutation happens under a single lock, so one registry may be
shared by threads (the batch layer's thread-based consumers hammer it
concurrently).  Registries are *process-local*, but worker deltas can
be folded back in: the batch pool snapshots a worker registry before
and after each task, ships :func:`diff_snapshots` with the result, and
the parent applies it with :meth:`MetricsRegistry.merge_snapshot` — so
pooled work shows up in the parent's ``batch.*``/``routing.*``/
``objective.*`` counters (see :func:`repro.core.batch.solve_batch`).

Histograms use the fixed log-spaced second buckets in
:data:`HISTOGRAM_BUCKETS`; fixed bounds keep worker/parent merging a
plain element-wise add and make the Prometheus exposition
(:func:`render_prometheus`) cumulative-bucket correct.

Metric names are dotted strings, ``subsystem.object.event``; the
catalogue lives in ``docs/observability.md``.
"""

from __future__ import annotations

import bisect
import re
import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "MetricsRegistry",
    "METRICS",
    "HISTOGRAM_BUCKETS",
    "get_metrics",
    "enable_metrics",
    "disable_metrics",
    "collecting_metrics",
    "diff_snapshots",
    "render_prometheus",
]

#: Upper bounds (seconds) of the fixed latency histogram buckets; one
#: implicit overflow bucket follows the last bound.  Log-spaced from
#: 100µs to 60s — the observed dynamic range of a single gradient
#: projection up through a full decomposed solve.
HISTOGRAM_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Quantiles reported in every histogram snapshot.
_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
)


class _Timer:
    """Context manager recording one monotonic-clock duration."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe_timer(
            self._name, time.perf_counter() - self._start
        )


class _NullTimer:
    """Shared no-op timer handed out by disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Thread-safe named counters, gauges and duration accumulators."""

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self._enabled = bool(enabled)
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}  # name -> [count, total_s]
        # name -> [bucket counts (len(HISTOGRAM_BUCKETS)+1), sum, count]
        self._histograms: dict[str, list] = {}

    # -- enablement -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- recording ------------------------------------------------------
    def increment(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (no-op when disabled)."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observed ``value``."""
        if not self._enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe_timer(self, name: str, seconds: float) -> None:
        """Fold one duration into timer ``name``'s count/total.

        Also bumps the paired counter ``<name>.count`` so mean durations
        stay derivable from the counters view alone (``total_s`` lives
        in the timer record, the call count in both).
        """
        if not self._enabled:
            return
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                self._timers[name] = [1, float(seconds)]
            else:
                stats[0] += 1
                stats[1] += float(seconds)
            paired = name + ".count"
            self._counters[paired] = self._counters.get(paired, 0) + 1

    def observe_histogram(self, name: str, seconds: float) -> None:
        """Fold one duration into fixed-bucket histogram ``name``."""
        if not self._enabled:
            return
        value = float(seconds)
        index = bisect.bisect_left(HISTOGRAM_BUCKETS, value)
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = [[0] * (len(HISTOGRAM_BUCKETS) + 1), 0.0, 0]
                self._histograms[name] = hist
            hist[0][index] += 1
            hist[1] += value
            hist[2] += 1

    def timer(self, name: str) -> "_Timer | _NullTimer":
        """Monotonic-clock scope: ``with registry.timer("solve"): ...``."""
        if not self._enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, float]:
        """All counters whose name starts with ``prefix``, as a copy."""
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def snapshot(self) -> dict:
        """Everything the registry holds, as plain JSON-ready dicts."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {
                        "count": int(count),
                        "total_s": total,
                        "mean_s": total / count if count else 0.0,
                    }
                    for name, (count, total) in self._timers.items()
                },
                "histograms": {
                    name: _histogram_record(buckets, total, count)
                    for name, (buckets, total, count)
                    in self._histograms.items()
                },
            }

    def merge_snapshot(self, delta: dict) -> None:
        """Fold a snapshot-shaped delta (a worker's) into this registry.

        Counters and timer accumulators add; gauges take the delta's
        value (latest-wins, matching :meth:`gauge`); histogram buckets
        add element-wise.  No-op when disabled, so a parent that never
        opted in cannot be polluted by worker deltas.
        """
        if not self._enabled:
            return
        with self._lock:
            for name, value in delta.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in delta.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, stats in delta.get("timers", {}).items():
                mine = self._timers.get(name)
                if mine is None:
                    mine = [0, 0.0]
                    self._timers[name] = mine
                mine[0] += int(stats["count"])
                mine[1] += float(stats["total_s"])
            for name, record in delta.get("histograms", {}).items():
                buckets = list(record["buckets"])
                if len(buckets) != len(HISTOGRAM_BUCKETS) + 1:
                    continue  # foreign bucket layout; refuse to corrupt
                hist = self._histograms.get(name)
                if hist is None:
                    hist = [[0] * (len(HISTOGRAM_BUCKETS) + 1), 0.0, 0]
                    self._histograms[name] = hist
                for index, count in enumerate(buckets):
                    hist[0][index] += count
                hist[1] += float(record["sum_s"])
                hist[2] += int(record["count"])

    def reset(self) -> None:
        """Drop all recorded values (enablement is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()
            self._histograms.clear()


def _quantile(buckets: list, total_count: int, q: float) -> float:
    """Estimate quantile ``q`` by linear interpolation within buckets.

    The overflow bucket has no upper bound, so estimates landing there
    clamp to the last finite bound.
    """
    if total_count <= 0:
        return 0.0
    target = q * total_count
    cumulative = 0
    for index, count in enumerate(buckets):
        if count == 0:
            continue
        previous = cumulative
        cumulative += count
        if cumulative >= target:
            if index >= len(HISTOGRAM_BUCKETS):
                return HISTOGRAM_BUCKETS[-1]
            lower = HISTOGRAM_BUCKETS[index - 1] if index else 0.0
            upper = HISTOGRAM_BUCKETS[index]
            fraction = (target - previous) / count
            return lower + (upper - lower) * fraction
    return HISTOGRAM_BUCKETS[-1]


def _histogram_record(buckets: list, total: float, count: int) -> dict:
    record = {
        "buckets": list(buckets),
        "bounds": list(HISTOGRAM_BUCKETS),
        "sum_s": total,
        "count": int(count),
    }
    for label, q in _QUANTILES:
        record[label] = _quantile(buckets, count, q)
    return record


def diff_snapshots(after: dict, before: dict | None) -> dict:
    """Snapshot-shaped delta of work done between two snapshots.

    This is what a pool worker ships back: counters/timer accumulators
    and histogram buckets subtract (zero entries dropped); gauges keep
    their ``after`` value when it is new or changed.  ``before=None``
    means "everything in ``after``".
    """
    if before is None:
        before = {}
    counters = {}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        change = value - before_counters.get(name, 0)
        if change:
            counters[name] = change
    gauges = {}
    before_gauges = before.get("gauges", {})
    for name, value in after.get("gauges", {}).items():
        if name not in before_gauges or before_gauges[name] != value:
            gauges[name] = value
    timers = {}
    before_timers = before.get("timers", {})
    for name, stats in after.get("timers", {}).items():
        prior = before_timers.get(name, {"count": 0, "total_s": 0.0})
        count = stats["count"] - prior["count"]
        if count:
            total = stats["total_s"] - prior["total_s"]
            timers[name] = {
                "count": count,
                "total_s": total,
                "mean_s": total / count,
            }
    histograms = {}
    before_histograms = before.get("histograms", {})
    for name, record in after.get("histograms", {}).items():
        prior = before_histograms.get(name)
        if prior is None or len(prior["buckets"]) != len(record["buckets"]):
            buckets = list(record["buckets"])
            total = record["sum_s"]
            count = record["count"]
        else:
            buckets = [
                now - then
                for now, then in zip(record["buckets"], prior["buckets"])
            ]
            total = record["sum_s"] - prior["sum_s"]
            count = record["count"] - prior["count"]
        if count:
            histograms[name] = _histogram_record(buckets, total, count)
    return {
        "counters": counters,
        "gauges": gauges,
        "timers": timers,
        "histograms": histograms,
    }


def _prometheus_name(name: str, prefix: str) -> str:
    # Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*.
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _seconds_name(name: str, prefix: str) -> str:
    """Timer/histogram metric name with exactly one ``_seconds`` unit."""
    metric = _prometheus_name(name, prefix)
    return metric if metric.endswith("_seconds") else metric + "_seconds"


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Snapshot as Prometheus text exposition (format version 0.0.4).

    Counters gain ``_total``; timers surface as ``_seconds_count`` /
    ``_seconds_sum`` pairs; histograms emit cumulative ``_bucket``
    series with ``le`` labels plus ``_sum``/``_count``.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _prometheus_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {snapshot['counters'][name]:g}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prometheus_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {snapshot['gauges'][name]:g}")
    for name in sorted(snapshot.get("timers", {})):
        stats = snapshot["timers"][name]
        metric = _seconds_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {stats['count']:g}")
        lines.append(f"{metric}_sum {stats['total_s']:.9g}")
    for name in sorted(snapshot.get("histograms", {})):
        record = snapshot["histograms"][name]
        metric = _seconds_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        bounds = record.get("bounds", list(HISTOGRAM_BUCKETS))
        for bound, count in zip(bounds, record["buckets"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{bound:g}"}} {cumulative}'
            )
        cumulative += sum(record["buckets"][len(bounds):])
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {record['sum_s']:.9g}")
        lines.append(f"{metric}_count {record['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide registry all instrumented call sites report to.
#: Disabled by default so the solver hot path stays unmeasured unless
#: a caller opts in.
METRICS = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The global registry (see :data:`METRICS`)."""
    return METRICS


def enable_metrics() -> MetricsRegistry:
    """Turn global collection on; returns the registry."""
    METRICS.enable()
    return METRICS


def disable_metrics() -> MetricsRegistry:
    """Turn global collection off; recorded values are kept."""
    METRICS.disable()
    return METRICS


@contextmanager
def collecting_metrics(reset: bool = True) -> Iterator[MetricsRegistry]:
    """Enable the global registry within a block, restoring state after.

    With ``reset`` (default) the registry starts the block empty, so a
    snapshot taken inside covers exactly the block's work::

        with collecting_metrics() as registry:
            solve(problem)
            counts = registry.snapshot()["counters"]
    """
    was_enabled = METRICS.enabled
    if reset:
        METRICS.reset()
    METRICS.enable()
    try:
        yield METRICS
    finally:
        if not was_enabled:
            METRICS.disable()
