"""Lightweight process-local metrics: counters, gauges, timers.

The registry is the instrumentation primitive of the observability
layer: hot-path call sites (routing matvecs, objective memo lookups,
batch warm starts) increment named counters through the module-level
:data:`METRICS` singleton.  Collection is **off by default** — a
disabled registry's ``increment``/``gauge``/``observe_timer`` return
after one attribute check, so the solver's inner loop pays essentially
nothing until someone opts in via :func:`enable_metrics` or the
:func:`collecting_metrics` context manager.

All mutation happens under a single lock, so one registry may be
shared by threads (the batch layer's thread-based consumers hammer it
concurrently).  Registries are *process-local*: workers of a
``ProcessPoolExecutor`` each get their own, and their counts do not
propagate back to the parent — the batch layer records fan-out on the
parent side instead (see :func:`repro.core.batch.solve_batch`).

Metric names are dotted strings, ``subsystem.object.event``; the
catalogue lives in ``docs/observability.md``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "MetricsRegistry",
    "METRICS",
    "get_metrics",
    "enable_metrics",
    "disable_metrics",
    "collecting_metrics",
]


class _Timer:
    """Context manager recording one monotonic-clock duration."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self._name = name

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe_timer(
            self._name, time.perf_counter() - self._start
        )


class _NullTimer:
    """Shared no-op timer handed out by disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Thread-safe named counters, gauges and duration accumulators."""

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self._enabled = bool(enabled)
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timers: dict[str, list[float]] = {}  # name -> [count, total_s]

    # -- enablement -----------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- recording ------------------------------------------------------
    def increment(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (no-op when disabled)."""
        if not self._enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observed ``value``."""
        if not self._enabled:
            return
        with self._lock:
            self._gauges[name] = float(value)

    def observe_timer(self, name: str, seconds: float) -> None:
        """Fold one duration into timer ``name``'s count/total."""
        if not self._enabled:
            return
        with self._lock:
            stats = self._timers.get(name)
            if stats is None:
                self._timers[name] = [1, float(seconds)]
            else:
                stats[0] += 1
                stats[1] += float(seconds)

    def timer(self, name: str) -> "_Timer | _NullTimer":
        """Monotonic-clock scope: ``with registry.timer("solve"): ...``."""
        if not self._enabled:
            return _NULL_TIMER
        return _Timer(self, name)

    # -- reading --------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> dict[str, float]:
        """All counters whose name starts with ``prefix``, as a copy."""
        with self._lock:
            return {
                name: value
                for name, value in self._counters.items()
                if name.startswith(prefix)
            }

    def snapshot(self) -> dict:
        """Everything the registry holds, as plain JSON-ready dicts."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timers": {
                    name: {
                        "count": int(count),
                        "total_s": total,
                        "mean_s": total / count if count else 0.0,
                    }
                    for name, (count, total) in self._timers.items()
                },
            }

    def reset(self) -> None:
        """Drop all recorded values (enablement is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timers.clear()


#: The process-wide registry all instrumented call sites report to.
#: Disabled by default so the solver hot path stays unmeasured unless
#: a caller opts in.
METRICS = MetricsRegistry(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The global registry (see :data:`METRICS`)."""
    return METRICS


def enable_metrics() -> MetricsRegistry:
    """Turn global collection on; returns the registry."""
    METRICS.enable()
    return METRICS


def disable_metrics() -> MetricsRegistry:
    """Turn global collection off; recorded values are kept."""
    METRICS.disable()
    return METRICS


@contextmanager
def collecting_metrics(reset: bool = True) -> Iterator[MetricsRegistry]:
    """Enable the global registry within a block, restoring state after.

    With ``reset`` (default) the registry starts the block empty, so a
    snapshot taken inside covers exactly the block's work::

        with collecting_metrics() as registry:
            solve(problem)
            counts = registry.snapshot()["counters"]
    """
    was_enabled = METRICS.enabled
    if reset:
        METRICS.reset()
    METRICS.enable()
    try:
        yield METRICS
    finally:
        if not was_enabled:
            METRICS.disable()
