"""One ``logging`` hierarchy for the whole package.

Every ``repro`` module logs through ``get_logger(__name__)``; nothing
in the library configures handlers (library code must not hijack the
host application's logging).  Entry points — the CLI, the experiments
runner — call :func:`configure_logging` once, which attaches a single
stderr handler to the ``repro`` root logger so user-facing results on
stdout stay machine-parseable while progress/diagnostic lines go to
stderr.
"""

from __future__ import annotations

import logging
import sys
from typing import IO

__all__ = ["configure_logging", "get_logger", "ROOT_LOGGER"]

#: The package's root logger name; all module loggers live under it.
ROOT_LOGGER = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"

#: Marker attribute identifying the handler configure_logging installed.
_HANDLER_MARK = "_repro_obs_handler"


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger()`` returns the package root; ``get_logger("cli")``
    and ``get_logger("repro.cli")`` both return ``repro.cli``.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    level: int | str = "info",
    stream: IO[str] | None = None,
    fmt: str = _FORMAT,
    force: bool = False,
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root logger.

    Idempotent: calling it again adjusts the level of the handler it
    installed earlier instead of stacking duplicates; ``force``
    replaces the handler (e.g. to redirect to a new stream).  Returns
    the configured root logger.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved

    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)

    existing = [
        handler
        for handler in root.handlers
        if getattr(handler, _HANDLER_MARK, False)
    ]
    if existing and not force:
        for handler in existing:
            handler.setLevel(level)
        return root
    for handler in existing:
        root.removeHandler(handler)

    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter(fmt, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    # The host application may have its own root configuration; don't
    # double-print through it.
    root.propagate = False
    return root
