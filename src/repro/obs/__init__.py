"""Observability layer: structured tracing, metrics, logging, manifests.

The optimization stack is the system's hot path; this package makes it
*observable* without slowing it down:

``repro.obs.metrics``
    A process-local registry of counters, gauges and monotonic timers.
    Instrumented call sites (routing matvecs, objective memo, batch
    warm starts) pay a single attribute check when collection is
    disabled — the default.
``repro.obs.trace``
    :class:`SolverTrace` — a per-iteration sink the gradient-projection
    solver emits :class:`IterationRecord` objects into.  A solve with
    no trace installed skips record construction entirely.
``repro.obs.logsetup``
    ``configure_logging()`` / ``get_logger()`` — one structured
    ``logging`` hierarchy under the ``repro`` root instead of ad-hoc
    prints.
``repro.obs.spans``
    Hierarchical wall-clock spans (trace/span/parent ids, status,
    attributes) with an ambient :func:`span` context manager that is
    zero-overhead when disabled and explicit context capture for
    stitching worker spans across process and thread boundaries.
``repro.obs.manifest``
    Run manifests: trace + metrics + spans + problem fingerprint
    serialized to JSONL, with summary and compare tooling
    (``netsampling trace``).

This package deliberately imports nothing from ``repro.core`` so the
solver stack can depend on it without cycles.
"""

from .logsetup import configure_logging, get_logger
from .manifest import (
    RunManifest,
    compare_manifests,
    fingerprint_problem,
    read_manifest,
    summarize_manifest,
    write_manifest,
)
from .metrics import (
    HISTOGRAM_BUCKETS,
    METRICS,
    MetricsRegistry,
    collecting_metrics,
    diff_snapshots,
    disable_metrics,
    enable_metrics,
    get_metrics,
    render_prometheus,
)
from .spans import (
    Span,
    SpanRecorder,
    active_span_recorder,
    collecting_spans,
    current_span_context,
    record_span,
    remote_span_context,
    render_span_tree,
    span,
    spans_active,
    summarize_spans,
    using_span_context,
)
from .trace import IterationRecord, SolverTrace, active_trace, tracing

__all__ = [
    # metrics
    "MetricsRegistry",
    "METRICS",
    "HISTOGRAM_BUCKETS",
    "get_metrics",
    "enable_metrics",
    "disable_metrics",
    "collecting_metrics",
    "diff_snapshots",
    "render_prometheus",
    # spans
    "Span",
    "SpanRecorder",
    "span",
    "record_span",
    "spans_active",
    "active_span_recorder",
    "collecting_spans",
    "current_span_context",
    "remote_span_context",
    "using_span_context",
    "summarize_spans",
    "render_span_tree",
    # trace
    "SolverTrace",
    "IterationRecord",
    "tracing",
    "active_trace",
    # logging
    "configure_logging",
    "get_logger",
    # manifests
    "RunManifest",
    "fingerprint_problem",
    "write_manifest",
    "read_manifest",
    "summarize_manifest",
    "compare_manifests",
]
