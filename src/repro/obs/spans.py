"""Hierarchical wall-clock spans, stitched across process boundaries.

A *span* is one timed region of work — a batch solve, a pool task, a
resilience attempt — with a ``trace_id`` shared by every span of one
logical operation, a unique ``span_id``, and a ``parent_id`` linking it
into a tree.  The ambient :func:`span` context manager mirrors the
design of :data:`repro.obs.metrics.METRICS`: when no recorder is
installed it returns a shared no-op object after a single module-global
check, so instrumented call sites cost essentially nothing by default.

Cross-boundary stitching uses explicit context capture:

* **Processes** — the parent captures :func:`current_span_context` and
  ships it with each pool task; the worker installs it via
  :func:`remote_span_context`, runs its work, and ships the recorded
  span dicts back with the result for :meth:`SpanRecorder.absorb`.
* **Threads** — ``contextvars`` does not flow into manually created
  threads (the resilience watchdog), so the caller captures the context
  and the thread target re-installs it with :func:`using_span_context`.

The current parent lives in a :class:`~contextvars.ContextVar` rather
than a plain global so concurrent threads (supervised solves, batch
consumers) each see their own ancestry while sharing one recorder.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from contextvars import ContextVar
from typing import Iterator, Sequence

__all__ = [
    "Span",
    "SpanRecorder",
    "span",
    "record_span",
    "spans_active",
    "active_span_recorder",
    "collecting_spans",
    "current_span_context",
    "remote_span_context",
    "using_span_context",
    "summarize_spans",
    "render_span_tree",
]


@dataclass(frozen=True)
class Span:
    """One finished timed region; immutable once recorded."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_s: float  # epoch seconds (time.time) — comparable across processes
    duration_s: float
    status: str = "ok"  # "ok" | "error"
    attributes: dict = field(default_factory=dict)
    pid: int = 0

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            name=str(payload["name"]),
            start_s=float(payload["start_s"]),
            duration_s=float(payload["duration_s"]),
            status=str(payload.get("status", "ok")),
            attributes=dict(payload.get("attributes", {})),
            pid=int(payload.get("pid", 0)),
        )


class SpanRecorder:
    """Thread-safe sink for finished spans of one trace."""

    def __init__(self, label: str = "", trace_id: str | None = None):
        self.label = label
        self.trace_id = trace_id or uuid.uuid4().hex
        self._lock = threading.Lock()
        self._spans: list[Span] = []

    def record(self, finished: Span) -> None:
        with self._lock:
            self._spans.append(finished)

    def absorb(self, payloads: Sequence[dict | Span]) -> None:
        """Merge spans shipped back from a worker into this trace."""
        with self._lock:
            for payload in payloads:
                if isinstance(payload, Span):
                    self._spans.append(payload)
                else:
                    self._spans.append(Span.from_dict(payload))

    @property
    def spans(self) -> list[Span]:
        """All recorded spans, ordered by wall-clock start."""
        with self._lock:
            return sorted(self._spans, key=lambda s: s.start_s)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: Installed recorder, or None.  A single ``is None`` check is the whole
#: disabled-path cost of :func:`span`.
_RECORDER: SpanRecorder | None = None

#: (trace_id, span_id) of the innermost open span in this execution
#: context, or None when at the root of the trace.
_CURRENT: ContextVar[tuple[str, str | None] | None] = ContextVar(
    "repro_span_context", default=None
)


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class _NullSpan:
    """Shared no-op span handed out when no recorder is installed."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Open span: times the block, then records into its recorder.

    The recorder is pinned at ``__enter__`` so a span opened inside one
    :func:`collecting_spans` block never leaks into a later one (an
    abandoned watchdog thread can outlive its collection window).
    """

    __slots__ = (
        "name",
        "attributes",
        "trace_id",
        "span_id",
        "parent_id",
        "_recorder",
        "_token",
        "_start_wall",
        "_start_perf",
    )

    def __init__(self, name: str, attributes: dict):
        self.name = name
        self.attributes = attributes

    def __enter__(self) -> "_LiveSpan":
        recorder = _RECORDER
        self._recorder = recorder
        context = _CURRENT.get()
        if context is not None:
            self.trace_id, self.parent_id = context
        else:
            # `is not None`, not truthiness: an empty recorder has
            # len() == 0 and would test falsy.
            self.trace_id = recorder.trace_id if recorder is not None else ""
            self.parent_id = None
        self.span_id = _new_span_id()
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def set(self, **attributes) -> None:
        """Attach attributes discovered after the span opened."""
        self.attributes.update(attributes)

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start_perf
        _CURRENT.reset(self._token)
        recorder = self._recorder
        if recorder is not None and recorder is _RECORDER:
            status = "ok"
            if exc_type is not None:
                status = "error"
                self.attributes.setdefault("error", exc_type.__name__)
            recorder.record(
                Span(
                    trace_id=self.trace_id,
                    span_id=self.span_id,
                    parent_id=self.parent_id,
                    name=self.name,
                    start_s=self._start_wall,
                    duration_s=duration,
                    status=status,
                    attributes=self.attributes,
                    pid=os.getpid(),
                )
            )
        return False


def span(name: str, **attributes) -> "_LiveSpan | _NullSpan":
    """Time a region: ``with span("batch.pool", tasks=n): ...``.

    Zero-overhead when disabled: without a recorder installed this is
    one global load and a shared no-op object.  On exception the span
    records with ``status="error"`` and re-raises.
    """
    if _RECORDER is None:
        return _NULL_SPAN
    return _LiveSpan(name, attributes)


def record_span(
    name: str,
    *,
    duration_s: float,
    start_s: float | None = None,
    status: str = "ok",
    **attributes,
) -> Span | None:
    """Record an already-measured span under the current parent.

    Two uses: leaf regions timed without opening a ``with`` block (the
    gradient-projection solver reports post-hoc to keep its body flat),
    and parent-side synthesis of error spans for workers that died
    before shipping theirs.
    """
    recorder = _RECORDER
    if recorder is None:
        return None
    context = _CURRENT.get()
    if context is not None:
        trace_id, parent_id = context
    else:
        trace_id, parent_id = recorder.trace_id, None
    if start_s is None:
        start_s = time.time() - duration_s
    finished = Span(
        trace_id=trace_id,
        span_id=_new_span_id(),
        parent_id=parent_id,
        name=name,
        start_s=start_s,
        duration_s=duration_s,
        status=status,
        attributes=attributes,
        pid=os.getpid(),
    )
    recorder.record(finished)
    return finished


def spans_active() -> bool:
    """True when a recorder is installed (i.e. spans are being kept)."""
    return _RECORDER is not None


def active_span_recorder() -> SpanRecorder | None:
    """The installed recorder, or None."""
    return _RECORDER


@contextmanager
def collecting_spans(label: str = "") -> Iterator[SpanRecorder]:
    """Install a fresh recorder (new trace) for the duration of a block.

    ::

        with collecting_spans("sweep") as recorder:
            solve_batch(problems)
        tree = render_span_tree(recorder.spans)
    """
    global _RECORDER
    recorder = SpanRecorder(label=label)
    previous = _RECORDER
    _RECORDER = recorder
    token = _CURRENT.set(None)
    try:
        yield recorder
    finally:
        _CURRENT.reset(token)
        _RECORDER = previous


def current_span_context() -> dict | None:
    """Shippable {trace_id, span_id} of the innermost open span.

    Returns None when spans are disabled, so callers can skip the
    cross-process plumbing entirely.
    """
    recorder = _RECORDER
    if recorder is None:
        return None
    context = _CURRENT.get()
    if context is None:
        return {"trace_id": recorder.trace_id, "span_id": None}
    return {"trace_id": context[0], "span_id": context[1]}


@contextmanager
def remote_span_context(
    context: dict, label: str = ""
) -> Iterator[SpanRecorder]:
    """Worker-side: record spans that stitch into a remote parent.

    Installs a recorder bound to the shipped ``trace_id`` and seeds the
    current parent with the shipped ``span_id``; every span opened in
    the block becomes a descendant of the remote parent.  The caller
    ships ``[s.to_dict() for s in recorder.spans]`` back with its
    result for :meth:`SpanRecorder.absorb` on the other side.
    """
    global _RECORDER
    recorder = SpanRecorder(label=label, trace_id=str(context["trace_id"]))
    previous = _RECORDER
    _RECORDER = recorder
    token = _CURRENT.set((recorder.trace_id, context.get("span_id")))
    try:
        yield recorder
    finally:
        _CURRENT.reset(token)
        _RECORDER = previous


@contextmanager
def using_span_context(context: dict | None) -> Iterator[None]:
    """Re-install a captured context in a manually created thread.

    ``contextvars`` does not propagate into ``threading.Thread``
    targets, so the resilience watchdog captures
    :func:`current_span_context` before spawning and wraps its target
    with this.  Safe to call with None (no-op).
    """
    if context is None:
        yield
        return
    token = _CURRENT.set((str(context["trace_id"]), context.get("span_id")))
    try:
        yield
    finally:
        _CURRENT.reset(token)


# -- reporting ----------------------------------------------------------


def summarize_spans(spans: Sequence[Span]) -> dict:
    """Aggregate counts/durations per span name, JSON-ready."""
    by_name: dict[str, dict] = {}
    errors = 0
    pids = set()
    for item in spans:
        stats = by_name.setdefault(
            item.name, {"count": 0, "errors": 0, "total_s": 0.0}
        )
        stats["count"] += 1
        stats["total_s"] += item.duration_s
        if item.status == "error":
            stats["errors"] += 1
            errors += 1
        pids.add(item.pid)
    return {
        "count": len(spans),
        "errors": errors,
        "processes": len(pids),
        "names": by_name,
    }


def render_span_tree(spans: Sequence[Span], width: int = 28) -> str:
    """Plain-text waterfall of one trace's span tree.

    Children indent under their parents; each line shows the name,
    duration, a position bar on the trace's wall-clock extent, the
    recording pid, and an ``!ERR`` marker for error spans.
    """
    if not spans:
        return "(no spans)"
    ordered = sorted(spans, key=lambda s: (s.start_s, s.span_id))
    ids = {s.span_id for s in ordered}
    children: dict[str | None, list[Span]] = {}
    for item in ordered:
        parent = item.parent_id if item.parent_id in ids else None
        children.setdefault(parent, []).append(item)
    t0 = min(s.start_s for s in ordered)
    t1 = max(s.start_s + s.duration_s for s in ordered)
    extent = max(t1 - t0, 1e-9)
    trace_ids = {s.trace_id for s in ordered}
    lines = [
        "trace {} · {} spans · {} process(es) · {:.3f}s".format(
            "/".join(sorted(trace_ids)), len(ordered),
            len({s.pid for s in ordered}), t1 - t0,
        )
    ]

    def _bar(item: Span) -> str:
        begin = int((item.start_s - t0) / extent * width)
        length = max(1, int(item.duration_s / extent * width))
        begin = min(begin, width - 1)
        length = min(length, width - begin)
        return "·" * begin + "█" * length + "·" * (width - begin - length)

    def _walk(parent: str | None, depth: int) -> None:
        for item in children.get(parent, []):
            marker = "  !ERR" if item.status == "error" else ""
            lines.append(
                "{}{}  {:.4f}s  [{}]  pid {}{}".format(
                    "  " * depth + item.name,
                    "",
                    item.duration_s,
                    _bar(item),
                    item.pid,
                    marker,
                )
            )
            _walk(item.span_id, depth + 1)

    _walk(None, 1)
    return "\n".join(lines)
