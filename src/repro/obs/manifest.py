"""Run manifests: trace + metrics + problem fingerprint as JSONL.

A manifest is the machine-readable record of what a solve (or a family
of solves) did: one ``manifest`` header line, a ``solve`` line per
solve scope, an ``iteration`` line per solver iteration, an optional
``metrics`` line with a registry snapshot, and a ``summary`` line per
solve mirroring its final diagnostics.  JSON-per-line keeps the format
streamable and diff-friendly; ``netsampling trace summary/compare``
are the human front ends.

Line grammar (each line is one JSON object with a ``record`` key)::

    {"record": "manifest", "schema_version": 1, "package_version": ...,
     "label": ..., "fingerprint": {...}, "extra": {...}}
    {"record": "solve", "solve_index": 0, "meta": {...}}
    {"record": "iteration", "solve_index": 0, "iteration": 1, ...}
    {"record": "summary", "solve_index": 0, "diagnostics": {...}}
    {"record": "span", "trace_id": ..., "span_id": ..., "parent_id": ...,
     "name": ..., "start_s": ..., "duration_s": ..., "status": ...}
    {"record": "metrics", "counters": {...}, "gauges": {...},
     "timers": {...}, "histograms": {...}, "span_summary": {...}}

This module imports nothing from ``repro.core``; problems and options
are fingerprinted duck-typed so the dependency arrow keeps pointing
from the solver stack into the observability layer.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .metrics import METRICS
from .spans import Span, summarize_spans
from .trace import IterationRecord, SolverTrace

__all__ = [
    "SCHEMA_VERSION",
    "RunManifest",
    "fingerprint_problem",
    "write_manifest",
    "read_manifest",
    "summarize_manifest",
    "compare_manifests",
]

SCHEMA_VERSION = 1


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports this package at import
    # time, so a module-level import would be circular.
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - only during partial installs
        return "unknown"


def _jsonable(value):
    """Best-effort conversion of option/metadata values to JSON types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return repr(value)


#: Attribute the problem-derived fingerprint base is memoized under.
_FINGERPRINT_CACHE_ATTR = "_repro_fingerprint_cache"


def _fingerprint_token(problem) -> tuple:
    """Identity token guarding the memoized fingerprint base.

    The arrays a :class:`SamplingProblem` holds are read-only (the
    constructor flips ``writeable`` off), so object identity implies
    content stability; a mutation *by replacement* — a new routing
    operator, new loads, a re-masked monitorable vector — changes the
    token and invalidates the memo.  θ and the interval are scalar
    knobs ``with_theta``-style copies vary, so they compare by value.
    """
    return (
        id(getattr(problem, "routing_op", None)),
        id(getattr(problem, "link_loads_pps", None)),
        id(getattr(problem, "alpha", None)),
        id(getattr(problem, "monitorable", None)),
        float(getattr(problem, "theta_packets", 0.0)),
        float(getattr(problem, "interval_seconds", 0.0)),
    )


def _fingerprint_base(problem) -> dict:
    """The problem-derived fields of the fingerprint (memoizable)."""
    routing_op = getattr(problem, "routing_op", None)
    alpha = getattr(problem, "alpha", None)
    base = {
        "package_version": _package_version(),
        "num_links": int(getattr(problem, "num_links", 0)),
        "num_od_pairs": int(getattr(problem, "num_od_pairs", 0)),
        "theta_packets": float(getattr(problem, "theta_packets", 0.0)),
        "interval_seconds": float(getattr(problem, "interval_seconds", 0.0)),
    }
    mask = getattr(problem, "candidate_mask", None)
    if mask is not None:
        base["candidate_links"] = int(mask.sum())
    if alpha is not None and len(alpha):
        base["alpha_min"] = float(min(alpha))
        base["alpha_max"] = float(max(alpha))
    if routing_op is not None:
        base["routing_nnz"] = int(routing_op.nnz)
        base["routing_density"] = float(routing_op.density)
        base["routing_backend"] = routing_op.backend
    return base


def fingerprint_problem(
    problem,
    topology: str | None = None,
    seed: int | None = None,
    options=None,
    **extra,
) -> dict:
    """A compact identity of a :class:`SamplingProblem` instance.

    Captures the structural coordinates a regression hunter needs to
    decide whether two manifests describe comparable runs: sizes, θ,
    α range, routing sparsity and backend, package version — plus the
    caller-supplied topology name, RNG seed and solver options.

    The problem-derived base is memoized on the problem object itself
    (``obs.fingerprint.cache_hit`` / ``cache_miss``): manifest writes
    and every solver-daemon request re-fingerprint the same resident
    problem, and the candidate-mask scan is worth skipping.  The memo
    invalidates when any constituent attribute is replaced (see
    :func:`_fingerprint_token`); objects that refuse the attribute
    (slots, frozen proxies) simply never cache.
    """
    token = _fingerprint_token(problem)
    cached = getattr(problem, _FINGERPRINT_CACHE_ATTR, None)
    if cached is not None and cached[0] == token:
        METRICS.increment("obs.fingerprint.cache_hit")
        fingerprint = dict(cached[1])
    else:
        METRICS.increment("obs.fingerprint.cache_miss")
        fingerprint = _fingerprint_base(problem)
        try:
            object.__setattr__(
                problem, _FINGERPRINT_CACHE_ATTR, (token, dict(fingerprint))
            )
        except (AttributeError, TypeError):
            pass
    if topology is not None:
        fingerprint["topology"] = topology
    if seed is not None:
        fingerprint["seed"] = int(seed)
    if options is not None:
        fingerprint["options"] = _jsonable(options)
    fingerprint.update({k: _jsonable(v) for k, v in extra.items()})
    return fingerprint


@dataclass
class RunManifest:
    """A parsed manifest: header + solves + iterations + metrics."""

    header: dict = field(default_factory=dict)
    solves: list[dict] = field(default_factory=list)
    iterations: list[IterationRecord] = field(default_factory=list)
    metrics: dict | None = None
    spans: list[Span] = field(default_factory=list)

    @property
    def fingerprint(self) -> dict:
        return self.header.get("fingerprint", {})

    @property
    def label(self) -> str:
        return self.header.get("label", "")

    def iterations_for(self, solve_index: int) -> list[IterationRecord]:
        return [r for r in self.iterations if r.solve_index == solve_index]

    def summary_for(self, solve_index: int) -> dict | None:
        for solve in self.solves:
            if solve.get("solve_index") == solve_index:
                return solve.get("summary")
        return None

    @property
    def total_iterations(self) -> int:
        return len(self.iterations)

    @property
    def total_wall_time_s(self) -> float:
        return sum(
            (s.get("summary") or {}).get("wall_time_s", 0.0)
            for s in self.solves
        )


def write_manifest(
    path: str | Path,
    trace: SolverTrace,
    metrics: dict | None = None,
    fingerprint: dict | None = None,
    extra: dict | None = None,
    spans: Sequence[Span] | None = None,
) -> Path:
    """Serialize a trace (plus context) to a JSONL manifest file.

    ``metrics`` is a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    dict (or None); ``fingerprint`` typically comes from
    :func:`fingerprint_problem`; ``spans`` is a sequence of
    :class:`~repro.obs.spans.Span` (one ``span`` line each, plus a
    ``span_summary`` aggregate inside the ``metrics`` record).  Returns
    the written path.
    """
    path = Path(path)
    lines: list[dict] = [
        {
            "record": "manifest",
            "schema_version": SCHEMA_VERSION,
            "package_version": _package_version(),
            "label": trace.label,
            "fingerprint": fingerprint or {},
            "extra": _jsonable(extra or {}),
        }
    ]
    for solve in trace.solves:
        lines.append(
            {
                "record": "solve",
                "solve_index": solve.solve_index,
                "meta": _jsonable(solve.meta),
            }
        )
    for record in trace.records:
        lines.append({"record": "iteration", **record.to_dict()})
    for solve in trace.solves:
        if solve.summary is not None:
            lines.append(
                {
                    "record": "summary",
                    "solve_index": solve.solve_index,
                    "diagnostics": _jsonable(solve.summary),
                }
            )
    for item in spans or ():
        lines.append({"record": "span", **item.to_dict()})
    if metrics is not None or spans:
        record = {"record": "metrics", **_jsonable(metrics or {})}
        if spans:
            record["span_summary"] = summarize_spans(spans)
        lines.append(record)
    with path.open("w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True))
            handle.write("\n")
    return path


def read_manifest(path: str | Path) -> RunManifest:
    """Parse a JSONL manifest back into a :class:`RunManifest`."""
    manifest = RunManifest()
    solves_by_index: dict[int, dict] = {}
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
            kind = payload.get("record")
            if kind == "manifest":
                manifest.header = payload
            elif kind == "solve":
                entry = {
                    "solve_index": int(payload["solve_index"]),
                    "meta": payload.get("meta", {}),
                    "summary": None,
                }
                solves_by_index[entry["solve_index"]] = entry
                manifest.solves.append(entry)
            elif kind == "iteration":
                manifest.iterations.append(IterationRecord.from_dict(payload))
            elif kind == "summary":
                index = int(payload["solve_index"])
                entry = solves_by_index.setdefault(
                    index, {"solve_index": index, "meta": {}, "summary": None}
                )
                if entry not in manifest.solves:
                    manifest.solves.append(entry)
                entry["summary"] = payload.get("diagnostics", {})
            elif kind == "span":
                manifest.spans.append(Span.from_dict(payload))
            elif kind == "metrics":
                manifest.metrics = {
                    k: v for k, v in payload.items() if k != "record"
                }
            else:
                raise ValueError(
                    f"{path}:{lineno}: unknown record kind {kind!r}"
                )
    return manifest


def _solve_row(solve: dict, iterations: Sequence[IterationRecord]) -> str:
    summary = solve.get("summary") or {}
    meta = solve.get("meta") or {}
    releases = max(
        (r.constraint_releases for r in iterations),
        default=summary.get("constraint_releases", 0),
    )
    objective = summary.get("objective_value")
    if objective is None and iterations:
        objective = iterations[-1].objective
    return (
        f"  solve[{solve['solve_index']}] {meta.get('method', '?')}: "
        f"{len(iterations)} iterations, {releases} releases, "
        f"converged={summary.get('converged', '?')}, "
        f"objective={objective if objective is None else format(objective, '.6f')}, "
        f"wall={summary.get('wall_time_s', 0.0):.4f}s, "
        f"ls_evals={summary.get('line_search_evaluations', 0)}"
    )


def summarize_manifest(manifest: RunManifest) -> str:
    """Human-readable digest of one manifest."""
    fp = manifest.fingerprint
    lines = [
        f"manifest: label={manifest.label!r} "
        f"schema=v{manifest.header.get('schema_version', '?')} "
        f"package={manifest.header.get('package_version', '?')}",
    ]
    if fp:
        lines.append(
            f"  problem: {fp.get('num_links', '?')} links x "
            f"{fp.get('num_od_pairs', '?')} OD, "
            f"theta={fp.get('theta_packets', '?')}, "
            f"topology={fp.get('topology', 'n/a')}, "
            f"backend={fp.get('routing_backend', '?')}"
        )
    lines.append(
        f"  totals: {len(manifest.solves)} solves, "
        f"{manifest.total_iterations} iterations, "
        f"{manifest.total_wall_time_s:.4f}s solver wall time"
    )
    for solve in manifest.solves:
        lines.append(
            _solve_row(solve, manifest.iterations_for(solve["solve_index"]))
        )
    if manifest.metrics:
        counters = manifest.metrics.get("counters", {})
        for name in sorted(counters):
            lines.append(f"  metric {name} = {counters[name]:g}")
        timers = manifest.metrics.get("timers", {})
        for name in sorted(timers):
            stats = timers[name]
            count = stats.get("count", 0)
            total = stats.get("total_s", 0.0)
            mean = stats.get("mean_s", total / count if count else 0.0)
            lines.append(
                f"  timer {name}: count={count:g} total={total:.4f}s "
                f"mean={mean:.6f}s"
            )
        histograms = manifest.metrics.get("histograms", {})
        for name in sorted(histograms):
            record = histograms[name]
            lines.append(
                f"  histogram {name}: count={record.get('count', 0)} "
                f"p50={record.get('p50', 0.0):.6f}s "
                f"p95={record.get('p95', 0.0):.6f}s "
                f"p99={record.get('p99', 0.0):.6f}s"
            )
        span_summary = manifest.metrics.get("span_summary")
        if span_summary:
            lines.append(
                f"  spans: {span_summary.get('count', 0)} recorded, "
                f"{span_summary.get('errors', 0)} errors, "
                f"{span_summary.get('processes', 0)} process(es)"
            )
    return "\n".join(lines)


def _summary_value(manifest: RunManifest, index: int, key: str, default=0):
    summary = manifest.summary_for(index) or {}
    return summary.get(key, default)


def compare_manifests(a: RunManifest, b: RunManifest) -> str:
    """Diff two manifests: per-solve convergence deltas + metric deltas.

    Aligns solves by index — meaningful when both manifests come from
    the same workload (the fingerprints are printed so mismatched
    comparisons are self-evident).
    """
    lines = [
        f"A: label={a.label!r} package="
        f"{a.header.get('package_version', '?')} fingerprint={a.fingerprint}",
        f"B: label={b.label!r} package="
        f"{b.header.get('package_version', '?')} fingerprint={b.fingerprint}",
    ]
    num = max(len(a.solves), len(b.solves))
    if len(a.solves) != len(b.solves):
        lines.append(
            f"  solve count differs: {len(a.solves)} vs {len(b.solves)}"
        )
    for index in range(num):
        in_a = index < len(a.solves)
        in_b = index < len(b.solves)
        if not (in_a and in_b):
            lines.append(f"  solve[{index}]: only in {'A' if in_a else 'B'}")
            continue
        it_a = len(a.iterations_for(index))
        it_b = len(b.iterations_for(index))
        rel_a = _summary_value(a, index, "constraint_releases")
        rel_b = _summary_value(b, index, "constraint_releases")
        obj_a = _summary_value(a, index, "objective_value", float("nan"))
        obj_b = _summary_value(b, index, "objective_value", float("nan"))
        wall_a = _summary_value(a, index, "wall_time_s", 0.0)
        wall_b = _summary_value(b, index, "wall_time_s", 0.0)
        lines.append(
            f"  solve[{index}]: iterations {it_a} -> {it_b} "
            f"({it_b - it_a:+d}), releases {rel_a} -> {rel_b} "
            f"({rel_b - rel_a:+d}), objective {obj_a:.6f} -> {obj_b:.6f} "
            f"({obj_b - obj_a:+.3e}), wall {wall_a:.4f}s -> {wall_b:.4f}s"
        )
    counters_a = (a.metrics or {}).get("counters", {})
    counters_b = (b.metrics or {}).get("counters", {})
    for name in sorted(set(counters_a) | set(counters_b)):
        va = counters_a.get(name, 0)
        vb = counters_b.get(name, 0)
        if va != vb:
            lines.append(f"  metric {name}: {va:g} -> {vb:g} ({vb - va:+g})")
    gauges_a = (a.metrics or {}).get("gauges", {})
    gauges_b = (b.metrics or {}).get("gauges", {})
    for name in sorted(set(gauges_a) | set(gauges_b)):
        va = gauges_a.get(name)
        vb = gauges_b.get(name)
        if va != vb:
            fa = "n/a" if va is None else format(va, "g")
            fb = "n/a" if vb is None else format(vb, "g")
            lines.append(f"  gauge {name}: {fa} -> {fb}")
    timers_a = (a.metrics or {}).get("timers", {})
    timers_b = (b.metrics or {}).get("timers", {})
    for name in sorted(set(timers_a) | set(timers_b)):
        ta = timers_a.get(name, {"count": 0, "total_s": 0.0})
        tb = timers_b.get(name, {"count": 0, "total_s": 0.0})
        if ta.get("count") != tb.get("count") or ta.get("total_s") != tb.get(
            "total_s"
        ):
            lines.append(
                f"  timer {name}: count {ta.get('count', 0):g} -> "
                f"{tb.get('count', 0):g}, total "
                f"{ta.get('total_s', 0.0):.4f}s -> "
                f"{tb.get('total_s', 0.0):.4f}s "
                f"({tb.get('total_s', 0.0) - ta.get('total_s', 0.0):+.4f}s)"
            )
    return "\n".join(lines)
