"""Structured per-iteration solver tracing.

A :class:`SolverTrace` is a sink the gradient-projection solver emits
one :class:`IterationRecord` into per search iteration — objective,
gradient norms, step length, line-search trial count, active-set size,
cumulative constraint releases and wall time.  The paper's own
convergence analysis (§IV-D: 1.64 constraint releases per run, 98.6 %
convergence within 2000 iterations) is exactly this kind of signal;
the trace makes it a first-class, machine-readable artifact instead of
an anecdote.

Cost model: a solve with no trace installed performs **no record
construction and no per-iteration clock reads** — the emission sites
are guarded by a single ``trace is not None`` check.  Tracing is
therefore safe to leave compiled into the hot path.

Traces can be installed two ways:

* explicitly, by passing ``trace=`` to
  :func:`~repro.core.gradient_projection.solve_gradient_projection`
  (or anything that forwards to it: the ``solve`` façade,
  :class:`~repro.core.batch.WarmStartChain`, chains, sweeps, the
  adaptive controller);
* ambiently, via the :func:`tracing` context manager — every solve on
  the current process that does not carry an explicit trace reports to
  the installed one.  This is how ``--trace-out`` captures experiment
  runners without threading a parameter through every call site.

One trace may span many solves (a θ sweep, a closed-loop run): records
carry a ``solve_index`` and each solve contributes a metadata/summary
pair, so the manifest layer can reconstruct per-solve convergence
curves from a flat JSONL file.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Iterator

__all__ = [
    "IterationRecord",
    "SolveRecord",
    "SolverTrace",
    "tracing",
    "active_trace",
]

#: Iteration events: a line-search ``step``, a multiplier-driven
#: ``release`` of active constraints, numerical pinning against a
#: bound (``pinned``), or the terminal KKT-certified ``converged``.
ITERATION_EVENTS = ("step", "release", "pinned", "converged")


@dataclass(frozen=True)
class IterationRecord:
    """One gradient-projection iteration, as the solver saw it.

    ``objective`` is evaluated at the iterate the iteration *produced*
    (post-step for ``step`` events, the unchanged point otherwise), so
    the final record of a solve reproduces
    ``SolverDiagnostics.objective_value`` exactly.
    ``constraint_releases`` is cumulative within the solve.
    """

    solve_index: int
    iteration: int
    event: str
    objective: float
    gradient_norm: float
    projected_gradient_norm: float
    step_length: float
    line_search_trials: int
    active_set_size: int
    constraint_releases: int
    wall_time_s: float

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "IterationRecord":
        return cls(
            solve_index=int(payload["solve_index"]),
            iteration=int(payload["iteration"]),
            event=str(payload["event"]),
            objective=float(payload["objective"]),
            gradient_norm=float(payload["gradient_norm"]),
            projected_gradient_norm=float(payload["projected_gradient_norm"]),
            step_length=float(payload["step_length"]),
            line_search_trials=int(payload["line_search_trials"]),
            active_set_size=int(payload["active_set_size"]),
            constraint_releases=int(payload["constraint_releases"]),
            wall_time_s=float(payload["wall_time_s"]),
        )


@dataclass
class SolveRecord:
    """Per-solve envelope: metadata at entry, summary at exit.

    ``meta`` is what the solver knew going in (method, sizes, θ, warm
    start); ``summary`` mirrors the final ``SolverDiagnostics`` and is
    ``None`` until :meth:`SolverTrace.end_solve` runs.
    """

    solve_index: int
    meta: dict = field(default_factory=dict)
    summary: dict | None = None


class SolverTrace:
    """Collects iteration records across one or more solves.

    Not safe for concurrent emission from multiple threads (a solve is
    single-threaded, and chained solves are sequential); process-pool
    workers cannot share one — give each worker its own or trace the
    sequential path.
    """

    def __init__(self, label: str = ""):
        self.label = label
        self._solves: list[SolveRecord] = []
        self._records: list[IterationRecord] = []

    # -- solver-facing API ----------------------------------------------
    def begin_solve(self, **meta) -> int:
        """Open a new solve scope; returns its ``solve_index``."""
        index = len(self._solves)
        self._solves.append(SolveRecord(solve_index=index, meta=dict(meta)))
        return index

    def emit(
        self,
        *,
        iteration: int,
        event: str,
        objective: float,
        gradient_norm: float,
        projected_gradient_norm: float,
        step_length: float,
        line_search_trials: int,
        active_set_size: int,
        constraint_releases: int,
        wall_time_s: float,
    ) -> None:
        """Append one iteration record to the currently open solve."""
        if not self._solves:
            self.begin_solve()
        self._records.append(
            IterationRecord(
                solve_index=self._solves[-1].solve_index,
                iteration=iteration,
                event=event,
                objective=float(objective),
                gradient_norm=float(gradient_norm),
                projected_gradient_norm=float(projected_gradient_norm),
                step_length=float(step_length),
                line_search_trials=int(line_search_trials),
                active_set_size=int(active_set_size),
                constraint_releases=int(constraint_releases),
                wall_time_s=float(wall_time_s),
            )
        )

    def end_solve(self, **summary) -> None:
        """Close the current solve with its diagnostics summary."""
        if not self._solves:
            self.begin_solve()
        self._solves[-1].summary = dict(summary)

    # -- consumer API ---------------------------------------------------
    @property
    def records(self) -> list[IterationRecord]:
        """All iteration records, in emission order (copy)."""
        return list(self._records)

    @property
    def solves(self) -> list[SolveRecord]:
        """All solve envelopes, in order (copy of the list)."""
        return list(self._solves)

    @property
    def num_solves(self) -> int:
        return len(self._solves)

    def iterations_for(self, solve_index: int) -> list[IterationRecord]:
        """The iteration records of one solve, in order."""
        return [r for r in self._records if r.solve_index == solve_index]

    def __len__(self) -> int:
        return len(self._records)


#: The ambiently installed trace (or None).  Module-level rather than
#: thread-local: the solver stack is process-parallel, not
#: thread-parallel, and a plain global keeps the disabled-path check
#: to one dictionary-free load.
_ACTIVE: SolverTrace | None = None


def active_trace() -> SolverTrace | None:
    """The trace installed by :func:`tracing`, if any."""
    return _ACTIVE


@contextmanager
def tracing(trace: SolverTrace) -> Iterator[SolverTrace]:
    """Install ``trace`` as the ambient sink for the duration of a block.

    Solves started inside the block that do not carry an explicit
    ``trace=`` argument report here.  Nesting restores the previous
    trace on exit.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = trace
    try:
        yield trace
    finally:
        _ACTIVE = previous
