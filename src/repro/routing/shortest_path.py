"""IS-IS-style weighted shortest-path routing.

The paper's optimizer consumes a routing matrix derived from the
network's IGP state (GEANT runs IS-IS; the authors collect IS-IS
updates continuously).  This module computes deterministic
shortest-path routes with Dijkstra over the links' administrative
weights, with a stable lexicographic tie-break so that routing — and
therefore every downstream experiment — is reproducible.
"""

from __future__ import annotations

import heapq

from ..topology.graph import Network
from .paths import Path

__all__ = ["ShortestPathRouter"]


class ShortestPathRouter:
    """Computes and caches weighted shortest paths on a network.

    Ties are broken lexicographically on the node sequence (fewer hops
    first, then alphabetical), so that two runs over the same topology
    always pick the same route — IS-IS deployments achieve the same
    effect through consistent router-id tie-breaking.
    """

    def __init__(self, net: Network) -> None:
        self._net = net
        self._cache: dict[str, dict[str, Path]] = {}

    @property
    def network(self) -> Network:
        return self._net

    def path(self, origin: str, destination: str) -> Path:
        """Shortest path from ``origin`` to ``destination``.

        Raises ``ValueError`` when no route exists and ``KeyError`` for
        unknown nodes.
        """
        self._net.node(origin)
        self._net.node(destination)
        tree = self._cache.get(origin)
        if tree is None:
            tree = self._dijkstra(origin)
            self._cache[origin] = tree
        try:
            return tree[destination]
        except KeyError:
            raise ValueError(f"no route from {origin} to {destination}") from None

    def paths_from(self, origin: str) -> dict[str, Path]:
        """Shortest paths from ``origin`` to every reachable node."""
        self._net.node(origin)
        tree = self._cache.get(origin)
        if tree is None:
            tree = self._dijkstra(origin)
            self._cache[origin] = tree
        return dict(tree)

    def invalidate(self) -> None:
        """Drop cached routes (call after mutating the network)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    def _dijkstra(self, origin: str) -> dict[str, Path]:
        """Single-source Dijkstra with (cost, hops, node-sequence) order."""
        # Priority key: (cost, hop count, node tuple).  The node tuple
        # makes the tie-break total and deterministic.
        start = (0.0, 0, (origin,), ())
        heap: list[tuple[float, int, tuple[str, ...], tuple[int, ...]]] = [start]
        done: dict[str, Path] = {}
        while heap:
            cost, hops, nodes, links = heapq.heappop(heap)
            node = nodes[-1]
            if node in done:
                continue
            done[node] = Path(nodes=nodes, link_indices=links, cost=cost)
            for link in self._net.out_links(node):
                if link.dst in done or link.dst in nodes:
                    continue
                heapq.heappush(
                    heap,
                    (
                        cost + link.weight,
                        hops + 1,
                        nodes + (link.dst,),
                        links + (link.index,),
                    ),
                )
        return done
