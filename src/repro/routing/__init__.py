"""Routing substrate: shortest paths, routing matrices, ECMP."""

from .ecmp import ecmp_routing_matrix, ecmp_split_fractions
from .paths import Path
from .routing_matrix import ODPair, RoutingMatrix
from .shortest_path import ShortestPathRouter

__all__ = [
    "Path",
    "ODPair",
    "RoutingMatrix",
    "ShortestPathRouter",
    "ecmp_split_fractions",
    "ecmp_routing_matrix",
]
