"""Path objects: a route through the network as an ordered link sequence."""

from __future__ import annotations

from dataclasses import dataclass

from ..topology.graph import Link, Network

__all__ = ["Path"]


@dataclass(frozen=True)
class Path:
    """A loop-free route from :attr:`origin` to :attr:`destination`.

    Attributes
    ----------
    nodes:
        Node names in traversal order, ``nodes[0]`` is the origin.
    link_indices:
        Dense link indices in traversal order; ``len(link_indices) ==
        len(nodes) - 1``.
    cost:
        Total routing weight of the path.
    """

    nodes: tuple[str, ...]
    link_indices: tuple[int, ...]
    cost: float

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise ValueError("a path needs at least one node")
        if len(self.link_indices) != len(self.nodes) - 1:
            raise ValueError(
                f"{len(self.nodes)} nodes require {len(self.nodes) - 1} links, "
                f"got {len(self.link_indices)}"
            )
        if len(set(self.nodes)) != len(self.nodes):
            raise ValueError(f"path revisits a node: {self.nodes}")

    @property
    def origin(self) -> str:
        return self.nodes[0]

    @property
    def destination(self) -> str:
        return self.nodes[-1]

    @property
    def num_hops(self) -> int:
        return len(self.link_indices)

    def traverses(self, link_index: int) -> bool:
        """True if the path crosses the link with this dense index."""
        return link_index in self.link_indices

    def links(self, net: Network) -> list[Link]:
        """Resolve the link indices against ``net``."""
        return [net.link(i) for i in self.link_indices]

    @classmethod
    def from_nodes(cls, net: Network, nodes: list[str] | tuple[str, ...]) -> "Path":
        """Build a path from a node sequence, resolving links in ``net``."""
        indices = []
        cost = 0.0
        for src, dst in zip(nodes, nodes[1:]):
            link = net.link_between(src, dst)
            indices.append(link.index)
            cost += link.weight
        return cls(nodes=tuple(nodes), link_indices=tuple(indices), cost=cost)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return " -> ".join(self.nodes)
