"""The routing matrix ``R`` of the paper's formulation.

``R`` has one row per OD pair ``k`` and one column per link ``i``, with
``r_{k,i} = 1`` iff OD pair ``k`` traverses link ``i`` (§III).  With the
ECMP extension entries may be fractional: the fraction of pair ``k``'s
traffic crossing link ``i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.routing_op import RoutingOperator
from ..topology.graph import Network
from .paths import Path
from .shortest_path import ShortestPathRouter

__all__ = ["ODPair", "RoutingMatrix"]


@dataclass(frozen=True, order=True)
class ODPair:
    """An origin-destination pair.

    In the paper's terminology an origin or destination "could refer to
    any end-host, network prefix, autonomous system, etc."; here they
    are node names of the routed topology, with an optional free-form
    label carrying the external identity (e.g. ``"JANET->NL"``).
    """

    origin: str
    destination: str
    label: str = ""

    def __post_init__(self) -> None:
        if self.origin == self.destination:
            raise ValueError(f"degenerate OD pair {self.origin}->{self.destination}")

    @property
    def name(self) -> str:
        return self.label or f"{self.origin}->{self.destination}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class RoutingMatrix:
    """Dense routing matrix over a fixed OD-pair list and network.

    Rows follow the order of :attr:`od_pairs`; columns follow the dense
    link indices of :attr:`network`.
    """

    def __init__(
        self,
        network: Network,
        od_pairs: Sequence[ODPair],
        matrix: np.ndarray,
        paths: Sequence[Path] | None = None,
    ) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (len(od_pairs), network.num_links):
            raise ValueError(
                f"routing matrix shape {matrix.shape} does not match "
                f"{len(od_pairs)} OD pairs x {network.num_links} links"
            )
        if np.any(matrix < 0) or np.any(matrix > 1):
            raise ValueError("routing fractions must lie in [0, 1]")
        self._network = network
        self._od_pairs = list(od_pairs)
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._paths = list(paths) if paths is not None else None
        self._operator: RoutingOperator | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_shortest_paths(
        cls,
        network: Network,
        od_pairs: Iterable[ODPair],
        router: ShortestPathRouter | None = None,
    ) -> "RoutingMatrix":
        """Route every OD pair on its weighted shortest path."""
        router = router or ShortestPathRouter(network)
        od_list = list(od_pairs)
        matrix = np.zeros((len(od_list), network.num_links))
        paths = []
        for row, od in enumerate(od_list):
            path = router.path(od.origin, od.destination)
            paths.append(path)
            for index in path.link_indices:
                matrix[row, index] = 1.0
        return cls(network, od_list, matrix, paths=paths)

    @classmethod
    def from_paths(
        cls, network: Network, od_pairs: Sequence[ODPair], paths: Sequence[Path]
    ) -> "RoutingMatrix":
        """Build from explicit (possibly non-shortest) paths."""
        if len(paths) != len(od_pairs):
            raise ValueError("need exactly one path per OD pair")
        matrix = np.zeros((len(od_pairs), network.num_links))
        for row, (od, path) in enumerate(zip(od_pairs, paths)):
            if path.origin != od.origin or path.destination != od.destination:
                raise ValueError(
                    f"path {path} does not connect {od.origin}->{od.destination}"
                )
            for index in path.link_indices:
                matrix[row, index] = 1.0
        return cls(network, list(od_pairs), matrix, paths=paths)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        return self._network

    @property
    def od_pairs(self) -> list[ODPair]:
        return list(self._od_pairs)

    @property
    def num_od_pairs(self) -> int:
        return len(self._od_pairs)

    @property
    def num_links(self) -> int:
        return self._network.num_links

    @property
    def matrix(self) -> np.ndarray:
        """The (read-only) ``F x L`` array of routing fractions."""
        return self._matrix

    @property
    def density(self) -> float:
        """Fraction of non-zero routing entries (paths are short, so
        backbone matrices sit well under a few percent)."""
        return self.operator().density

    def operator(self, prefer: str | None = None) -> RoutingOperator:
        """The matrix as a backend-selected linear operator.

        The default (auto) selection is cached; forcing a backend via
        ``prefer`` builds a fresh operator.
        """
        if prefer is not None:
            return RoutingOperator.from_matrix(self._matrix, prefer=prefer)
        if self._operator is None:
            self._operator = RoutingOperator.from_matrix(self._matrix)
        return self._operator

    def path_of(self, row: int) -> Path:
        """The explicit path of OD pair ``row`` (if built from paths)."""
        if self._paths is None:
            raise ValueError("routing matrix was not built from explicit paths")
        return self._paths[row]

    def row_of(self, od: ODPair) -> int:
        """Row index of ``od``; raises ``ValueError`` if absent."""
        try:
            return self._od_pairs.index(od)
        except ValueError:
            raise ValueError(f"OD pair {od.name} not in routing matrix") from None

    def traversed_link_indices(self) -> list[int]:
        """Indices of links crossed by at least one OD pair (the set L)."""
        used = np.flatnonzero(self._matrix.sum(axis=0) > 0)
        return [int(i) for i in used]

    def od_pairs_on_link(self, link_index: int) -> list[ODPair]:
        """OD pairs whose route crosses the given link."""
        rows = np.flatnonzero(self._matrix[:, link_index] > 0)
        return [self._od_pairs[int(r)] for r in rows]

    def restrict_links(self, link_indices: Iterable[int]) -> np.ndarray:
        """Columns of ``R`` for the given links, preserving their order."""
        cols = list(link_indices)
        return self._matrix[:, cols]

    def restrict_links_operator(
        self, link_indices: Iterable[int]
    ) -> RoutingOperator:
        """Operator over the given link columns — the cheap slicing
        path: the cut happens in the operator's native storage."""
        return self.operator().restrict_columns(list(link_indices))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RoutingMatrix({self._network.name!r}, "
            f"od_pairs={self.num_od_pairs}, links={self.num_links})"
        )
