"""Equal-cost multi-path (ECMP) routing extension.

Modern IGPs split an OD pair's traffic evenly across all equal-cost
next hops.  The paper routes each pair on a single path; we ship ECMP
as an extension so that the optimizer can be exercised with fractional
routing matrices (``r_{k,i}`` = fraction of pair ``k`` on link ``i``),
which its linear effective-rate model supports unchanged:
``ρ_k = Σ_i r_{k,i} · p_i`` is then the expected per-packet sampling
probability across the split.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..topology.graph import Network
from .routing_matrix import ODPair, RoutingMatrix

__all__ = ["ecmp_split_fractions", "ecmp_routing_matrix"]

_COST_TOLERANCE = 1e-9


def ecmp_split_fractions(net: Network, origin: str, destination: str) -> dict[int, float]:
    """Per-link traffic fractions of ECMP routing for one OD pair.

    Computes the classic per-hop even split: at each node, traffic is
    divided equally among all outgoing links that lie on *some* shortest
    path towards the destination.  Returns ``{link_index: fraction}``
    for every link carrying a positive fraction.
    """
    net.node(origin)
    net.node(destination)
    dist = _distances_to(net, destination)
    if origin not in dist:
        raise ValueError(f"no route from {origin} to {destination}")

    fractions: dict[int, float] = {}
    node_flow: dict[str, float] = {origin: 1.0}
    # Process nodes in decreasing distance-to-destination order so every
    # node's inflow is final before it is split.
    order = sorted(node_flow, key=lambda n: -dist[n])
    pending = {origin}
    while pending:
        node = max(pending, key=lambda n: dist[n])
        pending.discard(node)
        if node == destination:
            continue
        flow = node_flow.get(node, 0.0)
        if flow <= 0:
            continue
        next_links = [
            link
            for link in net.out_links(node)
            if link.dst in dist
            and math.isclose(
                dist[node], link.weight + dist[link.dst],
                rel_tol=0.0, abs_tol=_COST_TOLERANCE,
            )
        ]
        if not next_links:
            raise ValueError(f"no shortest-path next hop at {node}")
        share = flow / len(next_links)
        for link in next_links:
            fractions[link.index] = fractions.get(link.index, 0.0) + share
            node_flow[link.dst] = node_flow.get(link.dst, 0.0) + share
            if link.dst != destination:
                pending.add(link.dst)
        node_flow[node] = 0.0
    return fractions


def _distances_to(net: Network, destination: str) -> dict[str, float]:
    """Shortest-path distance from every node to ``destination``."""
    import heapq

    dist: dict[str, float] = {}
    heap: list[tuple[float, str]] = [(0.0, destination)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in dist:
            continue
        dist[node] = d
        for link in net.in_links(node):
            if link.src not in dist:
                heapq.heappush(heap, (d + link.weight, link.src))
    return dist


def ecmp_routing_matrix(
    network: Network, od_pairs: Iterable[ODPair] | Sequence[ODPair]
) -> RoutingMatrix:
    """Routing matrix with ECMP fractional entries."""
    od_list = list(od_pairs)
    matrix = np.zeros((len(od_list), network.num_links))
    for row, od in enumerate(od_list):
        for index, fraction in ecmp_split_fractions(
            network, od.origin, od.destination
        ).items():
            matrix[row, index] = min(1.0, fraction)
    return RoutingMatrix(network, od_list, matrix)
