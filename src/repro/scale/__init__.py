"""``repro.scale``: backends that push the solver past exact-GP scale.

Three cooperating backends, each certified rather than trusted:

``approx``
    Frank-Wolfe water-filling (:mod:`~repro.scale.approx`) — near-
    optimal in ``O(rounds · (nnz + n log n))`` with an a-posteriori
    duality-gap bound on every answer.
``decompose``
    OD×link connectivity decomposition (:mod:`~repro.scale.decompose`)
    — exact recombination across independent components, parallel on
    the shared-memory batch pool, certified by full-problem KKT.
``compiled``
    The paper's exact gradient projection on fused CSR kernels
    (:mod:`~repro.scale.compiled`) — numba when importable, pure
    NumPy otherwise.

:func:`solve_scaled` routes between them (and plain exact GP) with
the same auto-policy mechanism :class:`~repro.core.routing_op
.RoutingOperator` uses for dense/CSR: explicit ``backend=`` always
wins; ``"auto"`` inspects cheap structural signals — candidate count
against :data:`APPROX_AUTO_LINKS`, bipartite component count against
:data:`DECOMPOSE_AUTO_COMPONENTS`, utility-family homogeneity — and
records its choice in ``scale.backend.*`` counters.
"""

from __future__ import annotations

import numpy as np

from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution
from ..obs.metrics import METRICS
from ..obs.spans import span
from .approx import (
    ApproxOptions,
    budget_lp_vertex,
    frank_wolfe_gap,
    solve_approx,
)
from .compiled import (
    KERNEL_BACKEND,
    NUMBA_AVAILABLE,
    CompiledAccuracyObjective,
    compiled_supported,
    solve_compiled,
)
from .decompose import (
    DecomposeOptions,
    RoutingComponents,
    routing_components,
    solve_decomposed,
)

__all__ = [
    "SCALE_BACKENDS",
    "APPROX_AUTO_LINKS",
    "DECOMPOSE_AUTO_COMPONENTS",
    "DECOMPOSE_AUTO_MIN_LINKS",
    "COMPILED_AUTO_LINKS",
    "ApproxOptions",
    "DecomposeOptions",
    "RoutingComponents",
    "CompiledAccuracyObjective",
    "KERNEL_BACKEND",
    "NUMBA_AVAILABLE",
    "budget_lp_vertex",
    "frank_wolfe_gap",
    "compiled_supported",
    "routing_components",
    "choose_backend",
    "solve_approx",
    "solve_compiled",
    "solve_decomposed",
    "solve_scaled",
]

#: The backend names ``solve_scaled`` accepts (plus ``"auto"``).
SCALE_BACKENDS = ("exact", "approx", "decompose", "compiled")

#: Auto policy: candidate counts at or above this get the water-
#: filling approximation — exact GP's active-set bookkeeping stops
#: amortizing around here on one core.
APPROX_AUTO_LINKS = 50_000

#: Auto policy: decompose when the bipartite structure splits at
#: least this many ways *and* the instance is big enough for the
#: split to beat one exact solve.
DECOMPOSE_AUTO_COMPONENTS = 2
DECOMPOSE_AUTO_MIN_LINKS = 2_048

#: Auto policy: the compiled objective takes over for mid-size
#: homogeneous instances (below it, dispatch overhead dominates).
COMPILED_AUTO_LINKS = 512


def choose_backend(
    problem: SamplingProblem, backend: str = "auto"
) -> str:
    """Resolve ``backend`` (maybe ``"auto"``) to a concrete backend.

    Mirrors :meth:`RoutingOperator.from_matrix`: an explicit request
    is honored verbatim; ``"auto"`` picks by structure — approximation
    for very large candidate sets, decomposition for separable
    mid-to-large instances, compiled exact GP for homogeneous
    accuracy families, plain exact GP otherwise.
    """
    if backend != "auto":
        if backend not in SCALE_BACKENDS:
            raise ValueError(
                f"unknown scale backend {backend!r}; "
                f"know {('auto', *SCALE_BACKENDS)}"
            )
        return backend
    candidates = int(problem.candidate_mask.sum())
    if candidates >= APPROX_AUTO_LINKS:
        return "approx"
    if candidates >= DECOMPOSE_AUTO_MIN_LINKS:
        if (
            routing_components(problem).num_components
            >= DECOMPOSE_AUTO_COMPONENTS
        ):
            return "decompose"
    if candidates >= COMPILED_AUTO_LINKS and compiled_supported(
        problem.utilities
    ):
        return "compiled"
    return "exact"


def solve_scaled(
    problem: SamplingProblem,
    backend: str = "auto",
    approx_options: ApproxOptions | None = None,
    decompose_options: DecomposeOptions | None = None,
    gp_options=None,
    warm_start: np.ndarray | None = None,
) -> SamplingSolution:
    """Solve through a scale backend selected by :func:`choose_backend`.

    The returned diagnostics identify the backend that ran
    (``diagnostics.method``) and — for every non-exact backend —
    carry a certified ``optimality_gap``.
    """
    resolved = choose_backend(problem, backend)
    METRICS.increment(f"scale.backend.{resolved}")
    with span("scale.solve_scaled", backend=resolved,
              links=problem.num_links):
        if resolved == "approx":
            return solve_approx(
                problem, options=approx_options, warm_start=warm_start
            )
        if resolved == "decompose":
            return solve_decomposed(problem, options=decompose_options)
        if resolved == "compiled":
            return solve_compiled(
                problem, options=gp_options, warm_start=warm_start
            )
        from ..core.solver import solve

        return solve(problem, options=gp_options)
