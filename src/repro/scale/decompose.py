"""Routing-connectivity decomposition: split, solve in parallel, merge.

Two links interact in the optimum only when some OD pair crosses both
— directly or through a chain of shared OD pairs.  Formally: take the
bipartite graph on OD rows and candidate links with an edge where the
routing matrix has a nonzero; the connected components of that graph
partition the problem into subproblems that share *nothing* except
the scalar budget θ.  Hierarchical topologies with regional traffic,
multi-task batches flattened into one matrix, and federated networks
all produce many components.

The coupling through θ is one-dimensional, which is what makes the
recombination exact rather than heuristic.  Each component's optimal
value ``V_c(θ_c)`` is concave in its budget share with derivative
equal to the component's KKT capacity multiplier λ_c (the shadow
price of budget).  The split ``Σ θ_c = θ`` is optimal exactly when
no budget transfer pays: every unsaturated component sits at a
common waterline λ* (saturated components, pinned at ``Σ α U``, may
price higher).  The outer loop equalizes λ: solve the components at
the current split — round 0 fans out on the shared-memory batch pool
(:func:`~repro.core.batch.solve_batch`), later rounds re-solve
warm-started — then re-split by inverting each component's local
price curve through a monotone waterline search.

The merge is *proved*, not assumed: the stitched full-length vector
is handed to :func:`~repro.core.kkt.check_kkt` on the original
problem, whose conditions are sufficient for global optimality here,
and additionally stamped with the Frank-Wolfe bound from
:mod:`repro.scale.approx` — the same two certificates the presolve
lift relies on, extended across the budget split.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..core.batch import solve_batch
from ..core.gradient_projection import (
    GradientProjectionOptions,
    initial_feasible_point,
    solve_gradient_projection,
)
from ..core.kkt import check_kkt
from ..core.objective import SumUtilityObjective
from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution, SolverDiagnostics
from ..obs.metrics import METRICS
from ..obs.spans import span
from .approx import frank_wolfe_gap

__all__ = [
    "DecomposeOptions",
    "RoutingComponents",
    "routing_components",
    "solve_decomposed",
]

#: Multiplier floor: a component whose reported shadow price is this
#: small (or negative, from a degenerate multiplier fit) is treated as
#: priced-out rather than poisoning the log-space waterline search.
_LAMBDA_FLOOR = 1e-30


@dataclass(frozen=True)
class DecomposeOptions:
    """Knobs of the decomposition solver.

    ``kkt_tolerance`` is the certificate the merged point must pass on
    the *full* problem for the recombination to count as exact;
    ``gap_tolerance`` is the alternative success criterion — a
    relative Frank-Wolfe bound at least this tight certifies the
    merge even when many tiny components leave the multiplier fit
    short of exact stationarity.

    ``max_subproblems`` bounds the number of budget blocks the outer
    waterline coordinates.  A topology that fragments into hundreds
    of small components would otherwise pay per-solve setup overhead
    on every one each round; a *union* of components is itself a
    valid subproblem whose inner solve allocates across its members
    exactly, so small components are packed together (largest-first
    into the lightest block) and only the blocks are coordinated.
    ``processes`` flows into :func:`solve_batch` for the round-0
    fan-out (``None`` = its default, including the
    ``REPRO_MAX_PROCESSES`` cap); ``parallel=False`` forces every
    round inline — deterministic single-process debugging.

    ``polish=True`` finishes a stalled waterline with one warm-started
    gradient-projection pass on the *full* problem.  The merged point
    is already within ~1e-6 of optimal when that happens, so the
    polish converges in a handful of iterations and upgrades the
    certificate from "tight Frank-Wolfe gap" to "exact KKT"; switch
    it off at extreme scale to keep the solve strictly per-component.
    """

    max_rounds: int = 25
    kkt_tolerance: float = 1e-6
    gap_tolerance: float = 1e-8
    max_subproblems: int = 32
    gp_options: GradientProjectionOptions | None = None
    processes: int | None = None
    parallel: bool = True
    polish: bool = True

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.kkt_tolerance <= 0:
            raise ValueError("kkt_tolerance must be positive")
        if self.gap_tolerance <= 0:
            raise ValueError("gap_tolerance must be positive")
        if self.max_subproblems < 1:
            raise ValueError("max_subproblems must be >= 1")


@dataclass(frozen=True)
class RoutingComponents:
    """The OD×link bipartite component structure of a problem.

    ``candidate_links`` are full-problem link indices; each component
    is a pair of index arrays *into the candidate set* (columns) and
    into the OD rows.  ``dropped_rows`` are OD rows touching no
    candidate link — constants of the optimization, exactly as in
    presolve's row-drop rule.
    """

    candidate_links: np.ndarray
    components: tuple[tuple[np.ndarray, np.ndarray], ...]  # (rows, cols)
    dropped_rows: np.ndarray

    @property
    def num_components(self) -> int:
        return len(self.components)


def routing_components(problem: SamplingProblem) -> RoutingComponents:
    """Connected components of the candidate OD×link bipartite graph."""
    import scipy.sparse as sparse
    from scipy.sparse import csgraph

    cand = np.flatnonzero(problem.candidate_mask)
    csr = problem.candidate_routing_op().tosparse()
    if csr is None:
        csr = sparse.csr_matrix(problem.candidate_routing_op().toarray())
    num_rows, num_cols = csr.shape
    pattern = sparse.csr_matrix(
        (np.ones_like(csr.data), csr.indices, csr.indptr), shape=csr.shape
    )
    bipartite = sparse.bmat(
        [[None, pattern], [pattern.T, None]], format="csr"
    )
    _, labels = csgraph.connected_components(bipartite, directed=False)
    row_labels = labels[:num_rows]
    col_labels = labels[num_rows:]

    components = []
    for label in np.unique(col_labels):
        rows = np.flatnonzero(row_labels == label)
        cols = np.flatnonzero(col_labels == label)
        components.append((rows, cols))
    dropped = np.flatnonzero(~np.isin(row_labels, col_labels))
    return RoutingComponents(
        candidate_links=cand,
        components=tuple(components),
        dropped_rows=dropped,
    )


def _group_components(
    components: tuple[tuple[np.ndarray, np.ndarray], ...],
    max_subproblems: int,
) -> tuple[tuple[np.ndarray, np.ndarray], ...]:
    """Pack components into at most ``max_subproblems`` budget blocks.

    Largest-first into the lightest block (by candidate-link count):
    the classic LPT bound keeps the blocks within 4/3 of perfectly
    balanced, which is what the round-0 parallel fan-out cares about.
    A block-diagonal union of components is itself a valid
    subproblem, so correctness is unaffected — only the number of
    budget shares the outer waterline has to coordinate.
    """
    if len(components) <= max_subproblems:
        return tuple(components)
    order = sorted(
        range(len(components)),
        key=lambda i: components[i][1].size,
        reverse=True,
    )
    bins: list[list[int]] = [[] for _ in range(max_subproblems)]
    weights = [0] * max_subproblems
    for i in order:
        b = weights.index(min(weights))
        bins[b].append(i)
        weights[b] += components[i][1].size
    grouped = []
    for members in bins:
        if not members:
            continue
        rows = np.sort(np.concatenate([components[i][0] for i in members]))
        cols = np.sort(np.concatenate([components[i][1] for i in members]))
        grouped.append((rows, cols))
    return tuple(grouped)


#: Per-round damping: a component's budget share may move by at most
#: this multiplicative factor between rounds.  Combined with the
#: sample-table price model it rules out the secant limit cycles a
#: memoryless update is prone to near saturation boundaries.
_DAMPING = 3.0

#: Clip on local log-log price-curve slopes dθ/dλ used when the
#: waterline lands outside a component's sampled range.
_SLOPE_MIN, _SLOPE_MAX = -20.0, -0.05


def _directional_price(
    x: np.ndarray, ratio: np.ndarray, alpha: np.ndarray
) -> float:
    """Marginal value of budget for one component, ``V_c'(θ_c)``.

    ``ratio`` is the per-unit-budget gradient ``g_i / U_i``.  At the
    component optimum, links holding budget price removal at
    ``min ratio`` and links with headroom price addition at
    ``max ratio``; the true derivative lies between them (they
    coincide on any free coordinate).  Unlike the KKT multiplier fit,
    this stays well-defined when the active set has no free
    coordinate — a fully saturated component reports its *removal*
    price instead of an indeterminate-interval midpoint, which is the
    quantity the waterline comparison actually needs.
    """
    holds = x > 1e-12 * np.maximum(alpha, 1e-300)
    takes = x < alpha * (1.0 - 1e-9)
    remove = float(ratio[holds].min()) if np.any(holds) else None
    add = float(ratio[takes].max()) if np.any(takes) else None
    if remove is None:
        return max(add if add is not None else _LAMBDA_FLOOR, _LAMBDA_FLOOR)
    if add is None:
        return max(remove, _LAMBDA_FLOOR)
    return float(
        np.sqrt(max(add, _LAMBDA_FLOOR) * max(remove, _LAMBDA_FLOOR))
    )


def _waterline_split(
    theta_hist: list[list[float]],
    lam_hist: list[list[float]],
    theta_prev: np.ndarray,
    absorbable: np.ndarray,
    target: float,
) -> np.ndarray:
    """Budget shares equalizing the shadow price across components.

    Each component's price curve ``λ_c(θ)`` is modeled from *all*
    rounds solved so far: the ``(θ, λ)`` samples, made monotone in
    log-log space (concavity says θ must be non-increasing in λ), are
    interpolated between brackets and power-law extrapolated with
    clipped end slopes beyond them.  The waterline λ* with
    ``Σ θ_c(λ*) = target`` is found by bisection — every per-
    component curve is non-increasing in λ*, so the sum is monotone
    and the root unique.  Shares are clipped to ``[θ_prev/D, θ_prev·D]``
    (damping, :data:`_DAMPING`) and ``[0, Σ α U]``, then nudged to
    sum to ``target`` exactly.

    Keeping the whole sample history is what makes this robust where
    a two-point secant oscillates: once the waterline is bracketed by
    samples, interpolation keeps every later iterate inside the
    bracket.
    """
    m = len(theta_hist)
    rounds = len(theta_hist[0])
    theta_floor = target * 1e-15 + _LAMBDA_FLOOR
    ys = np.log(np.maximum(np.asarray(theta_hist, dtype=float), theta_floor))
    xs = np.log(np.maximum(np.asarray(lam_hist, dtype=float), _LAMBDA_FLOOR))
    order = np.argsort(xs, axis=1, kind="stable")
    xs = np.take_along_axis(xs, order, axis=1)
    ys = np.take_along_axis(ys, order, axis=1)
    # Concavity cleanup: θ non-increasing as λ increases.
    ys = np.minimum.accumulate(ys, axis=1)

    if rounds >= 2:
        with np.errstate(divide="ignore", invalid="ignore"):
            slope_lo = np.where(
                xs[:, 1] - xs[:, 0] > 1e-12,
                (ys[:, 1] - ys[:, 0]) / (xs[:, 1] - xs[:, 0]),
                -1.0,
            )
            slope_hi = np.where(
                xs[:, -1] - xs[:, -2] > 1e-12,
                (ys[:, -1] - ys[:, -2]) / (xs[:, -1] - xs[:, -2]),
                -1.0,
            )
        slope_lo = np.clip(
            np.nan_to_num(slope_lo, nan=-1.0), _SLOPE_MIN, _SLOPE_MAX
        )
        slope_hi = np.clip(
            np.nan_to_num(slope_hi, nan=-1.0), _SLOPE_MIN, _SLOPE_MAX
        )
    else:
        slope_lo = slope_hi = np.full(m, -1.0)

    # Damping window.  A drained component keeps a re-entry allowance
    # so a zero share is never an absorbing state.
    hi_cap = np.minimum(
        absorbable, np.maximum(theta_prev * _DAMPING, target / (10.0 * m))
    )
    lo_cap = theta_prev / _DAMPING

    rows = np.arange(m)

    def shares(log_waterline: float) -> np.ndarray:
        below = log_waterline <= xs[:, 0]
        above = log_waterline >= xs[:, -1]
        j = np.clip((xs < log_waterline).sum(axis=1), 1, rounds - 1) if (
            rounds >= 2
        ) else np.ones(m, dtype=int)
        if rounds >= 2:
            x0, x1 = xs[rows, j - 1], xs[rows, j]
            y0, y1 = ys[rows, j - 1], ys[rows, j]
            t = (log_waterline - x0) / np.maximum(x1 - x0, 1e-300)
            y = y0 + t * (y1 - y0)
        else:
            y = ys[:, 0]
        y = np.where(
            below, ys[:, 0] + slope_lo * (log_waterline - xs[:, 0]), y
        )
        y = np.where(
            above, ys[:, -1] + slope_hi * (log_waterline - xs[:, -1]), y
        )
        return np.clip(np.exp(y), lo_cap, hi_cap)

    lo = float(xs.min()) - 60.0
    hi = float(xs.max()) + 60.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if float(shares(mid).sum()) > target:
            lo = mid
        else:
            hi = mid
    split = shares(0.5 * (lo + hi))
    # Exact budget: spread the residual (bisection roundoff, or the
    # damping window binding) over components with headroom —
    # absorbable is the only hard bound here.
    residual = target - float(split.sum())
    for _ in range(4):
        # A vanishing residual is feasibility noise, not misallocation
        # — leave the shares alone so settled components stay settled
        # (and are not needlessly re-solved).
        if abs(residual) <= 1e-12 * max(target, 1.0):
            break
        room = (absorbable - split) if residual > 0 else split
        open_ = room > 0
        if not np.any(open_):
            break
        weights = room[open_] / float(room[open_].sum())
        split[open_] = np.clip(
            split[open_] + residual * weights, 0.0, absorbable[open_]
        )
        residual = target - float(split.sum())
    return split


def solve_decomposed(
    problem: SamplingProblem,
    options: DecomposeOptions | None = None,
) -> SamplingSolution:
    """Solve by component decomposition with exact recombination.

    Always returns a feasible full-length solution.  ``converged``
    means the merged point passed the full-problem KKT check — a
    certificate of *global* optimality; either way the diagnostics
    carry the certified Frank-Wolfe ``optimality_gap``.  A problem
    whose bipartite graph is one component degenerates gracefully
    into a single exact solve (plus the certificate).
    """
    with span("scale.decompose", links=problem.num_links):
        return _solve_decomposed(problem, options)


def _solve_decomposed(
    problem: SamplingProblem,
    options: DecomposeOptions | None = None,
) -> SamplingSolution:
    import scipy.sparse as sparse

    t_start = perf_counter()
    options = options or DecomposeOptions()
    problem.check_feasible()

    cand = np.flatnonzero(problem.candidate_mask)
    loads = problem.link_loads_pps[cand]
    alpha = problem.alpha[cand]
    target = problem.theta_rate_pps

    structure = routing_components(problem)
    num_true_components = structure.num_components
    components = _group_components(
        structure.components, options.max_subproblems
    )
    m = len(components)
    csr = problem.candidate_routing_op().tosparse()
    if csr is None:
        csr = sparse.csr_matrix(problem.candidate_routing_op().toarray())

    METRICS.increment("scale.decompose.solves")
    METRICS.gauge("scale.decompose.components", num_true_components)
    METRICS.gauge("scale.decompose.blocks", m)

    # Round-0 split: the global water-filling start is feasible, so
    # its per-component budget shares are too (and strictly positive
    # wherever the component has headroom).
    x0 = initial_feasible_point(loads, alpha, target)
    theta_c = np.array(
        [float(x0[cols] @ loads[cols]) for _, cols in components]
    )
    absorbable_c = np.array(
        [float(alpha[cols] @ loads[cols]) for _, cols in components]
    )

    full_objective = SumUtilityObjective(
        problem.candidate_routing_op(), problem.utilities
    )
    gp_options = options.gp_options or GradientProjectionOptions()

    x = np.zeros(cand.size)
    theta_hist: list[list[float]] = [[] for _ in range(m)]
    lam_hist: list[list[float]] = [[] for _ in range(m)]
    solutions: list[SamplingSolution | None] = [None] * m
    iterations = 0
    releases = 0
    rounds = 0
    kkt = None
    # One CSC conversion and one slice per component for the whole
    # solve — the sliced structure never changes across rounds, only
    # each component's θ share does.
    csc = csr.tocsc()
    parts = [
        (
            csc[:, cols].tocsr()[rows],
            [problem.utilities[int(k)] for k in rows],
        )
        for rows, cols in components
    ]

    def make_subproblem(i: int, theta_rate: float) -> SamplingProblem:
        rows, cols = components[i]
        sub_routing, utilities = parts[i]
        return SamplingProblem(
            sub_routing,
            loads[cols],
            theta_rate * problem.interval_seconds,
            utilities,
            alpha=alpha[cols],
            interval_seconds=problem.interval_seconds,
        )

    # A component is re-solved only when its share moved materially on
    # its own scale; sub-1e-9 jitter costs ~λ·Δθ objective — far below
    # every certificate this solver issues.
    share_scale = np.maximum(np.abs(theta_c), max(target, 1.0) / max(m, 1))
    solved_theta = np.full(m, np.nan)
    certified_by_gap = False
    for rounds in range(1, options.max_rounds + 1):
        with np.errstate(invalid="ignore"):
            moved = ~(
                np.abs(theta_c - solved_theta) <= 1e-9 * share_scale
            )
        stale = [
            i
            for i in range(m)
            if solutions[i] is None or bool(moved[i])
        ]
        subproblems = {
            i: make_subproblem(i, float(theta_c[i])) for i in stale
        }
        with span("scale.decompose.round", round=rounds, stale=len(stale)):
            if rounds == 1 and options.parallel:
                fresh = solve_batch(
                    [subproblems[i] for i in stale],
                    processes=options.processes,
                    options=gp_options,
                    presolve=False,
                )
                for i, sol in zip(stale, fresh):
                    solutions[i] = sol
            else:
                # Later rounds: only components whose share actually
                # moved are re-solved, warm-started from their previous
                # optimum — near the waterline fixed point that is a
                # handful of cheap iterations on a shrinking set of
                # components.
                for i in stale:
                    prev = solutions[i]
                    solutions[i] = solve_gradient_projection(
                        subproblems[i],
                        options=gp_options,
                        warm_start=None if prev is None else prev.rates,
                    )
        for i in stale:
            solved_theta[i] = float(theta_c[i])
            iterations += solutions[i].diagnostics.iterations
            releases += solutions[i].diagnostics.constraint_releases
            x[components[i][1]] = solutions[i].rates

        gradient = full_objective.gradient(x)
        kkt = check_kkt(
            problem,
            _lift(problem, cand, x),
            tolerance=options.kkt_tolerance,
            objective=full_objective,
            gradient=gradient,
        )
        if kkt.satisfied:
            break
        round_gap, _ = frank_wolfe_gap(gradient, x, loads, alpha, target)
        if round_gap <= options.gap_tolerance * max(
            1.0, abs(float(full_objective.value(x)))
        ):
            certified_by_gap = True
            break
        if rounds == options.max_rounds:
            break

        # Extend each component's sampled price curve with the
        # directional shadow price at this round's share, then
        # re-split at the common waterline the model predicts.
        for i, (_, cols) in enumerate(components):
            ratio = gradient[cols] / loads[cols]
            theta_hist[i].append(float(theta_c[i]))
            lam_hist[i].append(
                _directional_price(x[cols], ratio, alpha[cols])
            )
        next_theta = _waterline_split(
            theta_hist, lam_hist, theta_c, absorbable_c, target
        )
        if float(np.abs(next_theta - theta_c).max()) <= 1e-14 * target:
            # The price model reproduces the current split exactly —
            # more rounds cannot move it.  Leave the loop to the
            # polish (or the certified gap).
            theta_c = next_theta
            break
        theta_c = next_theta

    polish_iterations = 0
    if (
        options.polish
        and not certified_by_gap
        and kkt is not None
        and not kkt.satisfied
    ):
        polished = solve_gradient_projection(
            problem,
            options=gp_options,
            objective=full_objective,
            warm_start=_lift(problem, cand, x),
        )
        polish_iterations = polished.diagnostics.iterations
        iterations += polish_iterations
        releases += polished.diagnostics.constraint_releases
        x = polished.rates[cand]
        kkt = polished.diagnostics.kkt
        if kkt is None or not kkt.satisfied:
            kkt = check_kkt(
                problem,
                _lift(problem, cand, x),
                tolerance=options.kkt_tolerance,
                objective=full_objective,
            )

    rates = _lift(problem, cand, x)
    value = float(full_objective.value(x))
    gap, _ = frank_wolfe_gap(
        full_objective.gradient(x), x, loads, alpha, target
    )
    relative_gap = gap / max(1.0, abs(value))
    certified_by_gap = certified_by_gap or (
        relative_gap <= options.gap_tolerance
    )
    converged = bool(kkt is not None and kkt.satisfied) or certified_by_gap
    blocks_label = (
        f"{num_true_components} component(s)"
        if m == num_true_components
        else f"{num_true_components} component(s) in {m} block(s)"
    )
    METRICS.increment("scale.decompose.rounds", rounds)
    wall = perf_counter() - t_start
    if kkt is not None and kkt.satisfied and polish_iterations == 0:
        message = (
            f"{blocks_label} recombined exactly in {rounds} round(s): "
            f"full-problem KKT certified"
        )
    elif kkt is not None and kkt.satisfied:
        message = (
            f"{blocks_label}, {rounds} waterline round(s) + "
            f"{polish_iterations} polish iteration(s): full-problem "
            f"KKT certified"
        )
    elif certified_by_gap:
        message = (
            f"{blocks_label} recombined in {rounds} round(s): "
            f"certified within {relative_gap:.2e} of optimal"
        )
    else:
        message = (
            f"{blocks_label}, waterline not converged after "
            f"{rounds} round(s); certified gap {relative_gap:.2e}"
        )
    diagnostics = SolverDiagnostics(
        method="decompose",
        iterations=iterations,
        constraint_releases=releases,
        converged=converged,
        objective_value=value,
        kkt=kkt,
        message=message,
        wall_time_s=wall,
        optimality_gap=gap,
    )
    return SamplingSolution(problem=problem, rates=rates, diagnostics=diagnostics)


def _lift(
    problem: SamplingProblem, cand: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Candidate-space rates → full-length vector (plus free saturation)."""
    rates = np.zeros(problem.num_links)
    rates[cand] = x
    free = problem.free_saturated_mask
    rates[free] = problem.alpha[free]
    return rates
