"""Separable water-filling approximation with a certified gap.

The scaling backend of last resort: a Frank-Wolfe (conditional
gradient) loop whose linearized subproblem over the feasible polytope

    max  g·y   s.t.  Σ y_i U_i = θ/T,  0 ≤ y_i ≤ α_i

is a fractional knapsack with an equality budget — solved exactly by
*water-filling*: pour the budget into links in decreasing order of
marginal utility per unit of budget ``g_i / U_i``, saturating each at
its bound, with one fractional link at the waterline.  Each round
therefore costs one gradient (``O(nnz)``) plus one sort (``O(n log
n)``), and no active-set bookkeeping — the structure Kallitsis,
Stoev & Michailidis exploit for near-optimal monitoring at scales
where exact gradient projection is uneconomical.

The same linearization yields the *a-posteriori* optimality
certificate for free: by concavity, for any feasible ``y``

    f(y) ≤ f(x) + ∇f(x)·(y − x)   ⇒   f* − f(x) ≤ max_y ∇f(x)·(y − x)

and the maximizer on the right is exactly the knapsack vertex.  Every
answer ships that bound in ``SolverDiagnostics.optimality_gap``
(absolute) and on the ``solver.approx.gap`` gauge (relative), so an
approximate solve is never trusted on faith — the differential
harness checks the bound's *soundness* against the exact solver on
overlapping sizes (``docs/verification.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..core.gradient_projection import initial_feasible_point
from ..core.kkt import check_kkt
from ..core.line_search import line_search_along_ray
from ..core.objective import Objective, SumUtilityObjective
from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution, SolverDiagnostics
from ..obs.metrics import METRICS

__all__ = [
    "ApproxOptions",
    "budget_lp_vertex",
    "frank_wolfe_gap",
    "solve_approx",
]


@dataclass(frozen=True)
class ApproxOptions:
    """Knobs of the water-filling approximation.

    ``gap_tolerance`` is *relative* (`gap / max(1, |f|)`): the loop
    stops once the certified bound says the answer is within that
    fraction of optimal.  The default half-percent matches the
    "within a few percent" regime the approximation is for; tighten
    it and Frank-Wolfe's ``O(1/t)`` tail will oblige, slowly.
    """

    gap_tolerance: float = 5e-3
    max_rounds: int = 500
    line_search_tolerance: float = 1e-10
    wall_clock_limit_s: float | None = None

    def __post_init__(self) -> None:
        if self.gap_tolerance <= 0:
            raise ValueError("gap_tolerance must be positive")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.wall_clock_limit_s is not None and self.wall_clock_limit_s <= 0:
            raise ValueError("wall_clock_limit_s must be positive (or None)")


def budget_lp_vertex(
    gradient: np.ndarray,
    loads: np.ndarray,
    alpha: np.ndarray,
    target_rate: float,
) -> np.ndarray:
    """Exact maximizer of ``g·y`` over ``{y·U = θ', 0 ≤ y ≤ α}``.

    Greedy water-filling on the budget-normalized gradient: with
    ``z_i = U_i y_i`` the problem is a fractional knapsack in ``z``
    with per-item value ``g_i / U_i`` and capacity ``U_i α_i``, so
    sorting by the ratio and filling to the waterline is optimal.
    Assumes ``loads > 0`` (guaranteed for candidate links) and
    ``target_rate ≤ Σ α U`` up to roundoff (clamped here).
    """
    cap = loads * alpha  # budget absorbed when the link sits at α
    order = np.argsort(-(gradient / loads), kind="stable")
    filled = np.cumsum(cap[order])
    y = np.zeros_like(loads)
    total = float(filled[-1]) if filled.size else 0.0
    if target_rate >= total:
        return alpha.copy()
    boundary = int(np.searchsorted(filled, target_rate, side="left"))
    y[order[:boundary]] = alpha[order[:boundary]]
    already = float(filled[boundary - 1]) if boundary > 0 else 0.0
    remainder = target_rate - already
    if remainder > 0.0:
        pivot = order[boundary]
        y[pivot] = min(remainder / loads[pivot], alpha[pivot])
    return y


def frank_wolfe_gap(
    gradient: np.ndarray,
    x: np.ndarray,
    loads: np.ndarray,
    alpha: np.ndarray,
    target_rate: float,
) -> tuple[float, np.ndarray]:
    """(certified bound on ``f* − f(x)``, the LP vertex attaining it).

    Valid for any feasible ``x`` of any backend — the decomposition
    and compiled solvers use it to stamp their answers with the same
    certificate the approximation carries natively.  The bound is
    clamped at 0: roundoff can drive the inner product a hair
    negative when ``x`` is itself the vertex.
    """
    vertex = budget_lp_vertex(gradient, loads, alpha, target_rate)
    gap = float(gradient @ (vertex - x))
    return max(gap, 0.0), vertex


def solve_approx(
    problem: SamplingProblem,
    options: ApproxOptions | None = None,
    objective: Objective | None = None,
    warm_start: np.ndarray | None = None,
) -> SamplingSolution:
    """Near-optimal solve by Frank-Wolfe water-filling.

    Returns a :class:`SamplingSolution` whose diagnostics carry
    ``method="approx_waterfill"`` and a certified
    ``optimality_gap`` (absolute).  ``converged`` means the relative
    gap reached ``options.gap_tolerance``; a loop that exhausts
    ``max_rounds`` still returns its best feasible iterate *with* the
    bound actually achieved — the caller decides whether the wider
    certificate is acceptable.

    ``objective`` overrides the candidate objective (the compiled
    backend passes its fused evaluator); ``warm_start`` is a
    full-length rate vector used as the starting point after
    projection onto the feasible set.
    """
    t_start = perf_counter()
    options = options or ApproxOptions()
    problem.check_feasible()

    cand = np.flatnonzero(problem.candidate_mask)
    loads = problem.link_loads_pps[cand]
    alpha = problem.alpha[cand]
    target = problem.theta_rate_pps
    if objective is None:
        objective = SumUtilityObjective(
            problem.candidate_routing_op(), problem.utilities
        )

    if warm_start is not None:
        from ..core.gradient_projection import _project_to_feasible

        x = _project_to_feasible(
            np.asarray(warm_start, dtype=float)[cand], loads, alpha, target
        )
    else:
        x = initial_feasible_point(loads, alpha, target)

    rounds = 0
    evaluations = 0
    converged = False
    timed_out = False
    gap = float("inf")
    while rounds < options.max_rounds:
        if (
            options.wall_clock_limit_s is not None
            and perf_counter() - t_start > options.wall_clock_limit_s
        ):
            timed_out = True
            break
        rounds += 1
        g = objective.gradient(x)
        gap, vertex = frank_wolfe_gap(g, x, loads, alpha, target)
        scale = max(1.0, abs(objective.value(x)))
        if gap <= options.gap_tolerance * scale:
            converged = True
            break
        direction = vertex - x
        # Exact 1-D maximization of the concave restriction on [0, 1]
        # through the objective's incremental ray: ρ₀ is memoized from
        # the gradient, so the ray costs one extra matvec (δ = R s)
        # and each trial is O(K).
        ray = objective.along_ray(x, direction)
        result = line_search_along_ray(
            ray, 1.0, tolerance=options.line_search_tolerance
        )
        evaluations += result.newton_iterations
        if result.step <= 0.0:
            # The certificate says progress exists but the line search
            # could not realize it — numerical floor; stop with the
            # bound we have rather than loop in place.
            break
        x = x + result.step * direction
        np.clip(x, 0.0, alpha, out=x)

    rates = np.zeros(problem.num_links)
    rates[cand] = x
    free = problem.free_saturated_mask
    rates[free] = problem.alpha[free]

    value = float(objective.value(x))
    relative_gap = gap / max(1.0, abs(value))
    kkt = check_kkt(problem, rates, objective=objective)
    wall = perf_counter() - t_start
    if converged:
        message = (
            f"certified within {relative_gap:.2e} of optimal "
            f"({rounds} water-filling rounds)"
        )
    elif timed_out:
        message = (
            f"wall-clock limit {options.wall_clock_limit_s:g}s exceeded; "
            f"certified gap {relative_gap:.2e}"
        )
    else:
        message = (
            f"stopped after {rounds} rounds; certified gap {relative_gap:.2e}"
        )
    METRICS.increment("solver.approx.solves")
    METRICS.increment("solver.approx.rounds", rounds)
    METRICS.gauge("solver.approx.gap", relative_gap)
    METRICS.observe_timer("solver.approx.wall_time", wall)
    diagnostics = SolverDiagnostics(
        method="approx_waterfill",
        iterations=rounds,
        constraint_releases=0,
        converged=converged,
        objective_value=value,
        kkt=kkt,
        message=message,
        wall_time_s=wall,
        line_search_evaluations=evaluations,
        optimality_gap=gap,
    )
    return SamplingSolution(problem=problem, rates=rates, diagnostics=diagnostics)
