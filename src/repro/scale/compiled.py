"""Compiled inner-loop kernels for the projected-gradient hot path.

The gradient-projection inner loop spends its time in three places:
the ``ρ = R x`` matvec, the piecewise accuracy-utility formulas over
ρ, and the line-search trials along ``ρ₀ + t δ``.  This module fuses
each of them into a single pass over the CSR arrays — with
``numba.njit`` when numba is importable, and with a pure-NumPy
implementation otherwise.  The selection happens once at import
(:data:`KERNEL_BACKEND` records which path is live) so the same
public surface works on machines without numba, just slower; CI runs
both paths.

The fused evaluator plugs into the *existing* solver as a third
objective backend: :class:`CompiledAccuracyObjective` subclasses
:class:`~repro.core.objective.SumUtilityObjective` and overrides
exactly the methods the inner loop calls (``value`` / ``gradient`` /
``along_ray``), so :func:`solve_compiled` is the paper's gradient
projection verbatim — same iterates up to floating-point association,
which is why the differential harness can hold it to the same 1e-7
tolerance as the dense/CSR routing pair.

Only the homogeneous :class:`MeanSquaredRelativeAccuracy` family (the
paper's setting) has closed forms worth compiling; heterogeneous
utility mixes fall back to the generic objective, reported through
:func:`compiled_supported`.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from ..core.gradient_projection import (
    GradientProjectionOptions,
    solve_gradient_projection,
)
from ..core.objective import ObjectiveRay, SumUtilityObjective
from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution
from ..core.utility import MeanSquaredRelativeAccuracy, UtilityFunction
from ..obs.metrics import METRICS
from .approx import frank_wolfe_gap

__all__ = [
    "NUMBA_AVAILABLE",
    "KERNEL_BACKEND",
    "CompiledAccuracyObjective",
    "compiled_supported",
    "solve_compiled",
]

try:  # pragma: no cover - exercised via KERNEL_BACKEND assertions
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # the container ships without numba; CI runs both
    NUMBA_AVAILABLE = False

    def _njit(*args, **kwargs):
        """No-op decorator standing in for ``numba.njit``."""
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap


#: Which implementation the fused kernels run on: ``"numba"`` or
#: ``"numpy"``.  Decided once at import, reported by every compiled
#: solve through the ``scale.compiled.numba`` gauge.
KERNEL_BACKEND = "numba" if NUMBA_AVAILABLE else "numpy"


# ----------------------------------------------------------------------
# numba path: explicit loops, one pass per public operation
# ----------------------------------------------------------------------

@_njit(cache=False, fastmath=False)
def _numba_value(indptr, indices, data, x, c, x0, a0, d1, d2, w):  # pragma: no cover - needs numba
    total = 0.0
    for k in range(indptr.size - 1):
        rho = 0.0
        for idx in range(indptr[k], indptr[k + 1]):
            rho += data[idx] * x[indices[idx]]
        if rho < 0.0:
            rho = 0.0
        if rho >= x0[k]:
            total += w[k] * (1.0 + c[k] - c[k] / rho)
        else:
            dr = rho - x0[k]
            total += w[k] * (a0[k] + dr * d1[k] + 0.5 * dr * dr * d2[k])
    return total


@_njit(cache=False, fastmath=False)
def _numba_gradient(indptr, indices, data, x, c, x0, d1, d2, w, n):  # pragma: no cover - needs numba
    g = np.zeros(n)
    for k in range(indptr.size - 1):
        rho = 0.0
        for idx in range(indptr[k], indptr[k + 1]):
            rho += data[idx] * x[indices[idx]]
        if rho < 0.0:
            rho = 0.0
        if rho >= x0[k]:
            slope = c[k] / (rho * rho)
        else:
            slope = d1[k] + (rho - x0[k]) * d2[k]
        ws = w[k] * slope
        for idx in range(indptr[k], indptr[k + 1]):
            g[indices[idx]] += data[idx] * ws
    return g


@_njit(cache=False, fastmath=False)
def _numba_ray(rho0, delta, t, c, x0, a0, d1, d2, w):  # pragma: no cover - needs numba
    value = 0.0
    slope = 0.0
    curvature = 0.0
    for k in range(rho0.size):
        rho = rho0[k] + t * delta[k]
        if rho < 0.0:
            rho = 0.0
        if rho >= x0[k]:
            inv = 1.0 / rho
            value += w[k] * (1.0 + c[k] - c[k] * inv)
            slope += w[k] * c[k] * inv * inv * delta[k]
            curvature += w[k] * (-2.0 * c[k] * inv * inv * inv) * delta[k] * delta[k]
        else:
            dr = rho - x0[k]
            value += w[k] * (a0[k] + dr * d1[k] + 0.5 * dr * dr * d2[k])
            slope += w[k] * (d1[k] + dr * d2[k]) * delta[k]
            curvature += w[k] * d2[k] * delta[k] * delta[k]
    return value, slope, curvature


# ----------------------------------------------------------------------
# numpy fallback: same fused shape, vectorized
# ----------------------------------------------------------------------

def _numpy_ray(rho0, delta, t, c, x0, a0, d1, d2, w):
    """One-pass value/slope/curvature of the ray at trial ``t``.

    The generic ray calls three separate per-OD evaluations (one per
    derivative order), each re-deriving the piecewise mask; computing
    all three from one ``ρ(t)`` and one mask is the fallback's share
    of the fusion win.
    """
    rho = np.maximum(rho0 + t * delta, 0.0)
    upper = rho >= x0
    safe = np.maximum(rho, x0)
    inv = 1.0 / safe
    dr = rho - x0
    value = np.where(
        upper, 1.0 + c - c * inv, a0 + dr * d1 + 0.5 * dr * dr * d2
    )
    slope = np.where(upper, c * inv * inv, d1 + dr * d2)
    curvature = np.where(upper, -2.0 * c * inv**3, d2)
    wd = w * delta
    return (
        float(w @ value),
        float(wd @ slope),
        float((wd * delta) @ curvature),
    )


class _CompiledRay(ObjectiveRay):
    """Incremental ray on precomputed ``ρ₀``/``δ`` via the fused kernel.

    Newton asks for slope and curvature at the same ``t`` (and golden
    section for values); one fused evaluation per trial serves all
    three queries through a one-entry memo.
    """

    def __init__(self, objective: "CompiledAccuracyObjective", x, s):
        self._rho0 = objective.rho(x)
        self._delta = objective.routing_operator.matvec(
            np.asarray(s, dtype=float)
        )
        self._objective = objective
        self._last_t: float | None = None
        self._last: tuple[float, float, float] | None = None

    @property
    def delta(self) -> np.ndarray:
        return self._delta

    def _eval(self, t: float) -> tuple[float, float, float]:
        if t != self._last_t:
            o = self._objective
            if NUMBA_AVAILABLE:
                self._last = _numba_ray(
                    self._rho0, self._delta, t,
                    o._c, o._x0, o._a0, o._d1, o._d2, o._w,
                )
            else:
                self._last = _numpy_ray(
                    self._rho0, self._delta, t,
                    o._c, o._x0, o._a0, o._d1, o._d2, o._w,
                )
            self._last_t = t
        return self._last

    def value(self, t: float) -> float:
        return self._eval(t)[0]

    def slope(self, t: float) -> float:
        return self._eval(t)[1]

    def curvature(self, t: float) -> float:
        return self._eval(t)[2]


def compiled_supported(utilities: Sequence[UtilityFunction]) -> bool:
    """Whether the fused kernels apply (homogeneous accuracy family)."""
    return all(
        type(u) is MeanSquaredRelativeAccuracy for u in utilities
    )


class CompiledAccuracyObjective(SumUtilityObjective):
    """Sum-of-accuracy-utilities objective on fused CSR kernels.

    Drop-in for :class:`SumUtilityObjective` wherever the routing is
    available as CSR and every OD pair uses the paper's
    :class:`MeanSquaredRelativeAccuracy`; raises ``ValueError``
    otherwise (use :func:`compiled_supported` to pre-check).
    """

    def __init__(self, routing, utilities, weights=None):
        super().__init__(routing, utilities, weights)
        if not compiled_supported(self._utilities):
            raise ValueError(
                "compiled objective requires a homogeneous "
                "MeanSquaredRelativeAccuracy family"
            )
        csr = self._operator.tosparse()
        if csr is None:
            # Dense operators still benefit from the fused ray; build
            # the CSR view the row kernels run on.
            import scipy.sparse as sparse

            csr = sparse.csr_matrix(self._operator.toarray())
        self._indptr = np.ascontiguousarray(csr.indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(csr.indices, dtype=np.int64)
        self._data = np.ascontiguousarray(csr.data, dtype=np.float64)
        v = self._vectorized
        self._c = np.ascontiguousarray(v.c)
        self._x0 = np.ascontiguousarray(v.x0)
        self._a0 = np.ascontiguousarray(v.a0)
        self._d1 = np.ascontiguousarray(v.d1)
        self._d2 = np.ascontiguousarray(v.d2)
        self._w = np.ascontiguousarray(self._weights, dtype=np.float64)
        self._num_cols = int(self._operator.shape[1])

    @property
    def kernel_backend(self) -> str:
        return KERNEL_BACKEND

    def value(self, x: np.ndarray) -> float:
        if NUMBA_AVAILABLE:
            return float(
                _numba_value(
                    self._indptr, self._indices, self._data,
                    np.asarray(x, dtype=float),
                    self._c, self._x0, self._a0, self._d1, self._d2, self._w,
                )
            )
        return super().value(x)

    def gradient(self, x: np.ndarray) -> np.ndarray:
        if NUMBA_AVAILABLE:
            return _numba_gradient(
                self._indptr, self._indices, self._data,
                np.asarray(x, dtype=float),
                self._c, self._x0, self._d1, self._d2, self._w,
                self._num_cols,
            )
        return super().gradient(x)

    def along_ray(self, x: np.ndarray, s: np.ndarray) -> ObjectiveRay:
        return _CompiledRay(self, np.asarray(x, dtype=float), s)


def solve_compiled(
    problem: SamplingProblem,
    options: GradientProjectionOptions | None = None,
    warm_start: np.ndarray | None = None,
) -> SamplingSolution:
    """Exact gradient projection on the compiled objective backend.

    Identical mathematics to ``solve(method="gradient_projection")`` —
    only the evaluator changes — so the result carries the usual KKT
    certificate, plus a Frank-Wolfe ``optimality_gap`` so every scale
    backend's answer is certified the same way.  Raises
    ``ValueError`` on heterogeneous utility families.
    """
    objective = CompiledAccuracyObjective(
        problem.candidate_routing_op(), problem.utilities
    )
    solution = solve_gradient_projection(
        problem, options=options, objective=objective, warm_start=warm_start
    )
    cand = np.flatnonzero(problem.candidate_mask)
    x = solution.rates[cand]
    gap, _ = frank_wolfe_gap(
        objective.gradient(x), x,
        problem.link_loads_pps[cand], problem.alpha[cand],
        problem.theta_rate_pps,
    )
    METRICS.increment("scale.compiled.solves")
    METRICS.gauge("scale.compiled.numba", 1.0 if NUMBA_AVAILABLE else 0.0)
    diagnostics = dataclasses.replace(
        solution.diagnostics,
        method=f"compiled_gp[{KERNEL_BACKEND}]",
        optimality_gap=gap,
    )
    return SamplingSolution(
        problem=problem, rates=solution.rates, diagnostics=diagnostics
    )
