"""The optimization problem of §III as a validated value object."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from .routing_op import RoutingOperator
from .utility import MeanSquaredRelativeAccuracy, UtilityFunction, accuracy_utilities

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..traffic.workloads import MeasurementTask
    from .presolve import ReducedProblem

__all__ = ["SamplingProblem", "InfeasibleProblemError"]


class InfeasibleProblemError(ValueError):
    """The constraint set Ω is empty for the given θ, α and loads."""


def _require_finite(name: str, values: np.ndarray) -> None:
    """Raise a :class:`ValueError` naming the first non-finite entry.

    NaN propagates silently through the solver — comparisons against a
    NaN load or routing entry are all False, so a poisoned problem
    "solves" into a non-converging mess instead of failing loudly at
    construction.  Reject it here with the offending field and index.
    """
    values = np.asarray(values)
    finite = np.isfinite(values)
    if finite.all():
        return
    flat_index = int(np.flatnonzero(~finite.ravel())[0])
    position = np.unravel_index(flat_index, values.shape)
    where = "".join(f"[{int(i)}]" for i in position)
    bad = float(values.ravel()[flat_index])
    total = int((~finite).sum())
    raise ValueError(
        f"{name}{where} is {bad!r} ({total} non-finite "
        f"entr{'y' if total == 1 else 'ies'}); {name} must be finite"
    )


class SamplingProblem:
    """``max Σ M_k(ρ_k)`` s.t. ``Σ p_i U_i = θ/T``, ``0 <= p_i <= α_i``.

    Parameters
    ----------
    routing:
        ``F x L`` routing matrix ``R`` (0/1 or ECMP fractions).
    link_loads_pps:
        Per-link loads ``U_i`` in packets/second, length ``L``.
    theta_packets:
        System capacity θ: the maximum number of packets sampled
        network-wide per measurement interval (paper: 100 000 per
        5 minutes).
    utilities:
        One :class:`UtilityFunction` per OD pair.
    alpha:
        Per-link maximum sampling rates ``α_i`` (scalar broadcasts).
    interval_seconds:
        Measurement-interval length ``T``; the capacity constraint is
        enforced on rates, ``Σ p_i U_i = θ / T``.
    monitorable:
        Boolean mask of links allowed to host a monitor.  The paper
        excludes access links (§V-C) and the restricted baseline
        monitors only the UK links; both are expressed through this
        mask.  Defaults to all links.
    alpha_ceiling:
        Upper validation bound on ``α``.  Physical problems keep the
        default ``1.0`` (sampling rates are probabilities); presolve's
        reduced problems pass ``None`` because an aggregate variable
        standing for a merged link group carries the *combined* bound
        ``Σ α_i``, which may exceed 1.  The solver mathematics is
        bound-agnostic, so nothing else changes.

    Notes
    -----
    Links that are not monitorable, not traversed by any OD pair of
    ``F``, or have zero load are excluded from the *candidate set* the
    solvers optimize over:

    * non-traversed links add no utility but consume budget, so the
      optimum puts ``p_i = 0`` there;
    * zero-load traversed links cost nothing, so the optimum saturates
      them at ``α_i`` (handled as a pre-pass).
    """

    def __init__(
        self,
        routing: np.ndarray,
        link_loads_pps: np.ndarray | Sequence[float],
        theta_packets: float,
        utilities: Sequence[UtilityFunction],
        alpha: float | np.ndarray | Sequence[float] = 1.0,
        interval_seconds: float = 300.0,
        monitorable: np.ndarray | Sequence[bool] | None = None,
        alpha_ceiling: float | None = 1.0,
    ) -> None:
        routing_op = RoutingOperator.from_matrix(routing)
        num_od, num_links = routing_op.shape
        if num_od == 0 or num_links == 0:
            raise ValueError("need at least one OD pair and one link")
        csr = routing_op.tosparse()
        _require_finite(
            "routing.data" if csr is not None else "routing",
            csr.data if csr is not None else routing_op.toarray(),
        )
        lo, hi = routing_op.entry_range()
        if lo < 0 or hi > 1:
            raise ValueError("routing entries must lie in [0, 1]")

        loads = np.asarray(link_loads_pps, dtype=float)
        if loads.shape != (num_links,):
            raise ValueError(
                f"loads have shape {loads.shape}, expected ({num_links},)"
            )
        _require_finite("link_loads_pps", loads)
        if np.any(loads < 0):
            index = int(np.flatnonzero(loads < 0)[0])
            raise ValueError(
                f"link_loads_pps[{index}] is {float(loads[index])!r}; link loads "
                "must be non-negative"
            )

        if len(utilities) != num_od:
            raise ValueError(
                f"{len(utilities)} utilities for {num_od} OD pairs"
            )
        for utility in utilities:
            if not isinstance(utility, UtilityFunction):
                raise TypeError(f"not a UtilityFunction: {utility!r}")

        alpha_vec = np.broadcast_to(
            np.asarray(alpha, dtype=float), (num_links,)
        ).copy()
        _require_finite("alpha", alpha_vec)
        if np.any(alpha_vec < 0) or (
            alpha_ceiling is not None and np.any(alpha_vec > alpha_ceiling)
        ):
            ceiling = alpha_ceiling if alpha_ceiling is not None else "inf"
            raise ValueError(f"alpha must lie in [0, {ceiling}]")

        if not np.isfinite(theta_packets) or theta_packets <= 0:
            raise ValueError(
                f"theta must be positive and finite, got {theta_packets!r}"
            )
        if not np.isfinite(interval_seconds) or interval_seconds <= 0:
            raise ValueError(
                f"interval must be positive and finite, got {interval_seconds!r}"
            )

        if monitorable is None:
            mask = np.ones(num_links, dtype=bool)
        else:
            mask = np.asarray(monitorable, dtype=bool)
            if mask.shape != (num_links,):
                raise ValueError("monitorable mask does not match link count")

        self._routing_op = routing_op
        self._routing_dense: np.ndarray | None = None
        self._candidate_op: RoutingOperator | None = None
        self.link_loads_pps = loads
        self.theta_packets = float(theta_packets)
        self.interval_seconds = float(interval_seconds)
        self.utilities = list(utilities)
        self.alpha = alpha_vec
        self.alpha_ceiling = alpha_ceiling
        self.monitorable = mask
        for array in (self.link_loads_pps, self.alpha, self.monitorable):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def routing(self) -> np.ndarray:
        """Dense ``F x L`` routing array (materialized on demand).

        The canonical storage is :attr:`routing_op`, which may be
        sparse; this property exists for consumers that index or
        reshape the matrix directly.
        """
        if self._routing_dense is None:
            dense = self._routing_op.toarray()
            dense.setflags(write=False)
            self._routing_dense = dense
        return self._routing_dense

    @property
    def routing_op(self) -> RoutingOperator:
        """The routing matrix as a backend-selected linear operator."""
        return self._routing_op

    def candidate_routing_op(self) -> RoutingOperator:
        """Operator over the candidate-link columns (cached).

        This is what the solvers build their objectives on: slicing
        happens once per problem, in the operator's native storage.
        """
        if self._candidate_op is None:
            self._candidate_op = self._routing_op.restrict_columns(
                np.flatnonzero(self.candidate_mask)
            )
        return self._candidate_op

    @property
    def num_od_pairs(self) -> int:
        return self._routing_op.shape[0]

    @property
    def num_links(self) -> int:
        return self._routing_op.shape[1]

    @property
    def theta_rate_pps(self) -> float:
        """Capacity as a rate: ``θ / T`` packets sampled per second."""
        return self.theta_packets / self.interval_seconds

    @property
    def traversed(self) -> np.ndarray:
        """Boolean mask of links crossed by at least one OD pair (L)."""
        return self._routing_op.column_sums() > 0

    @property
    def candidate_mask(self) -> np.ndarray:
        """Links the optimizer actually decides on."""
        return (
            self.monitorable
            & self.traversed
            & (self.link_loads_pps > 0)
            & (self.alpha > 0)
        )

    @property
    def free_saturated_mask(self) -> np.ndarray:
        """Traversed monitorable links with zero load: saturate for free."""
        return (
            self.monitorable
            & self.traversed
            & (self.link_loads_pps == 0)
            & (self.alpha > 0)
        )

    @property
    def max_absorbable_rate(self) -> float:
        """Largest enforceable ``Σ p_i U_i`` given the bounds: ``Σ α_i U_i``."""
        mask = self.candidate_mask
        return float(self.alpha[mask] @ self.link_loads_pps[mask])

    def check_feasible(self) -> None:
        """Raise :class:`InfeasibleProblemError` if Ω is empty."""
        if not np.any(self.candidate_mask):
            raise InfeasibleProblemError(
                "no candidate links: nothing monitorable carries task traffic"
            )
        absorbable = self.max_absorbable_rate
        if self.theta_rate_pps > absorbable * (1 + 1e-12):
            raise InfeasibleProblemError(
                f"theta rate {self.theta_rate_pps:.1f} pkt/s exceeds the "
                f"maximum absorbable {absorbable:.1f} pkt/s; lower theta or "
                "raise alpha"
            )

    def clamped(self) -> "SamplingProblem":
        """A copy with θ clamped to the maximum absorbable capacity.

        Convenience for capacity sweeps (Figure 2): beyond
        ``Σ α_i U_i`` the equality constraint is infeasible and the
        saturated solution is the natural continuation.
        """
        max_packets = self.max_absorbable_rate * self.interval_seconds
        if self.theta_packets <= max_packets:
            return self
        return SamplingProblem(
            self._routing_op,
            self.link_loads_pps,
            max_packets,
            self.utilities,
            alpha=self.alpha,
            interval_seconds=self.interval_seconds,
            monitorable=self.monitorable,
            alpha_ceiling=self.alpha_ceiling,
        )

    def restrict_monitors(self, link_indices: Iterable[int]) -> "SamplingProblem":
        """A copy where only the given links may host monitors."""
        mask = np.zeros(self.num_links, dtype=bool)
        for index in link_indices:
            mask[int(index)] = True
        return SamplingProblem(
            self._routing_op,
            self.link_loads_pps,
            self.theta_packets,
            self.utilities,
            alpha=self.alpha,
            interval_seconds=self.interval_seconds,
            monitorable=self.monitorable & mask,
            alpha_ceiling=self.alpha_ceiling,
        )

    def with_routing_backend(self, prefer: str) -> "SamplingProblem":
        """A copy whose routing operator is forced onto one backend.

        ``prefer`` is ``"dense"`` or ``"sparse"``.  The numerical
        content is identical; only the storage (and therefore the
        matvec kernels) changes.  The differential-verification
        harness uses this to solve the same instance through both
        backends and demand agreement — it is not meant for
        performance tuning, where ``RoutingOperator.from_matrix``'s
        automatic selection does better.
        """
        if prefer not in ("dense", "sparse"):
            raise ValueError(
                f"prefer must be 'dense' or 'sparse', got {prefer!r}"
            )
        return SamplingProblem(
            RoutingOperator.from_matrix(self._routing_op, prefer=prefer),
            self.link_loads_pps,
            self.theta_packets,
            self.utilities,
            alpha=self.alpha,
            interval_seconds=self.interval_seconds,
            monitorable=self.monitorable,
            alpha_ceiling=self.alpha_ceiling,
        )

    def with_theta(self, theta_packets: float) -> "SamplingProblem":
        """A copy with a different capacity θ."""
        return SamplingProblem(
            self._routing_op,
            self.link_loads_pps,
            theta_packets,
            self.utilities,
            alpha=self.alpha,
            interval_seconds=self.interval_seconds,
            monitorable=self.monitorable,
            alpha_ceiling=self.alpha_ceiling,
        )

    def presolve(self) -> "ReducedProblem":
        """Reduce this problem before solving (see :mod:`repro.core.presolve`).

        Convenience front end for ``presolve(problem)``: eliminates
        never-traversed links, merges duplicate-column links into
        aggregate variables, drops unobservable OD rows, and returns a
        :class:`~repro.core.presolve.ReducedProblem` whose ``lift``
        restores full-space solutions with the identical objective.
        """
        from .presolve import presolve as _presolve

        return _presolve(self)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_task(
        cls,
        task: "MeasurementTask",
        theta_packets: float,
        alpha: float | np.ndarray = 1.0,
        monitorable: np.ndarray | None = None,
        utility_factory: Callable[[float], UtilityFunction] | None = None,
    ) -> "SamplingProblem":
        """Build the problem for a :class:`MeasurementTask`.

        ``utility_factory`` maps each OD pair's mean inverse size
        ``c_k`` to its utility; defaults to the paper's
        :class:`MeanSquaredRelativeAccuracy`.
        """
        cs = task.mean_inverse_sizes
        if utility_factory is None:
            utilities: list[UtilityFunction] = accuracy_utilities(cs)
        else:
            utilities = [utility_factory(float(c)) for c in cs]
        return cls(
            task.routing.matrix,
            task.link_loads_pps,
            theta_packets,
            utilities,
            alpha=alpha,
            interval_seconds=task.interval_seconds,
            monitorable=monitorable,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SamplingProblem(od_pairs={self.num_od_pairs}, "
            f"links={self.num_links}, theta={self.theta_packets:g} pkts/"
            f"{self.interval_seconds:g}s)"
        )
