"""Utility functions ``M(ρ)`` quantifying measurement quality (§IV-C).

The optimization framework requires ``M`` to be strictly increasing,
strictly concave, twice continuously differentiable, and ``M(0) = 0``.

The paper's canonical choice is the *mean squared relative accuracy* of
the inverted size estimate.  With ``c = E[1/S_k]`` (mean inverse size
of OD pair ``k``), random i.i.d. sampling gives a binomial sampled
count, hence an expected squared relative error ``E[SRE](ρ) =
c (1 - ρ)/ρ`` and accuracy

    A(ρ) = 1 - E[SRE](ρ) = 1 + c - c/ρ.

``A`` diverges at ``ρ → 0``, so below a splice point ``x₀`` the paper
substitutes the quadratic (second-order Taylor) expansion ``A*`` of
``A`` at ``x₀``, choosing ``x₀`` such that ``A*(0) = 0``.  Solving that
condition in closed form gives

    x₀ = 3c / (1 + c),        M(x₀) = A(x₀) = (2/3)(1 + c),

which matches the ``≈0.666 / 0.668`` splice values annotated in the
paper's Figure 1.  The resulting piecewise function is C²:
value, slope and curvature of ``A*`` and ``A`` agree at ``x₀`` by
construction.

Alternative utilities (log / exponential) are provided for the paper's
"future work" direction of task-specific utility design; they satisfy
the same regularity conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "UtilityFunction",
    "MeanSquaredRelativeAccuracy",
    "LogUtility",
    "ExponentialUtility",
    "accuracy_utilities",
]


def _clean_rho(rho) -> np.ndarray:
    """Validate an effective-rate argument, absorbing float-epsilon dips.

    Iterative solvers evaluate utilities exactly on the bound ``ρ = 0``,
    where roundoff can produce values like ``-1e-18``; those are clamped.
    Materially negative rates are a caller bug and raise.
    """
    rho = np.asarray(rho, dtype=float)
    if np.any(rho < -1e-9):
        raise ValueError("effective sampling rate must be non-negative")
    return np.maximum(rho, 0.0)


class UtilityFunction:
    """Interface: increasing, strictly concave, C², ``M(0) = 0``.

    All methods are vectorized over numpy arrays and accept scalars.
    The domain is ``ρ >= 0``; values above 1 are permitted because the
    linear effective-rate model (§IV-B) can slightly overshoot 1.
    """

    def value(self, rho):
        """``M(ρ)``."""
        raise NotImplementedError

    def derivative(self, rho):
        """``M'(ρ)`` (positive)."""
        raise NotImplementedError

    def second_derivative(self, rho):
        """``M''(ρ)`` (negative)."""
        raise NotImplementedError

    def __call__(self, rho):
        return self.value(rho)


@dataclass(frozen=True)
class MeanSquaredRelativeAccuracy(UtilityFunction):
    """The paper's utility: spliced mean squared relative accuracy.

    Parameters
    ----------
    mean_inverse_size:
        ``c = E[1/S_k]`` — mean inverse size (in packets) of the
        quantity being estimated.  Must lie in ``(0, 1/2)`` so that the
        splice point ``x₀ = 3c/(1+c)`` stays below 1.
    """

    mean_inverse_size: float

    def __post_init__(self) -> None:
        c = self.mean_inverse_size
        if not 0.0 < c < 0.5:
            raise ValueError(
                f"mean inverse size must be in (0, 0.5), got {c} "
                "(flows of average size < 2 packets cannot be spliced)"
            )

    # ------------------------------------------------------------------
    # closed-form pieces
    # ------------------------------------------------------------------
    @property
    def splice_point(self) -> float:
        """``x₀ = 3c / (1 + c)`` — where ``A*`` hands over to ``A``."""
        c = self.mean_inverse_size
        return 3.0 * c / (1.0 + c)

    @property
    def splice_value(self) -> float:
        """``M(x₀) = (2/3)(1 + c)`` (≈ 0.666…0.668 in Figure 1)."""
        return 2.0 * (1.0 + self.mean_inverse_size) / 3.0

    def expected_sre(self, rho):
        """``E[SRE](ρ) = c (1 - ρ)/ρ`` (only meaningful for ρ > 0)."""
        rho = np.asarray(rho, dtype=float)
        c = self.mean_inverse_size
        return c * (1.0 - rho) / rho

    def accuracy(self, rho):
        """``A(ρ) = 1 - E[SRE](ρ)`` without the splice (ρ > 0)."""
        rho = np.asarray(rho, dtype=float)
        c = self.mean_inverse_size
        return 1.0 + c - c / rho

    # ------------------------------------------------------------------
    # UtilityFunction interface
    # ------------------------------------------------------------------
    def value(self, rho):
        rho = _clean_rho(rho)
        c = self.mean_inverse_size
        x0 = self.splice_point
        a0 = self.splice_value          # A(x0)
        d1 = c / x0**2                  # A'(x0)
        d2 = -2.0 * c / x0**3           # A''(x0)
        # Quadratic branch (ρ < x0) is defined everywhere; the hyperbolic
        # branch divides by ρ, so evaluate it on a clipped copy and select.
        safe = np.maximum(rho, x0)
        hyperbolic = 1.0 + c - c / safe
        quadratic = a0 + (rho - x0) * d1 + 0.5 * (rho - x0) ** 2 * d2
        result = np.where(rho >= x0, hyperbolic, quadratic)
        return result if result.ndim else float(result)

    def derivative(self, rho):
        rho = _clean_rho(rho)
        c = self.mean_inverse_size
        x0 = self.splice_point
        d1 = c / x0**2
        d2 = -2.0 * c / x0**3
        safe = np.maximum(rho, x0)
        hyperbolic = c / safe**2
        quadratic = d1 + (rho - x0) * d2
        result = np.where(rho >= x0, hyperbolic, quadratic)
        return result if result.ndim else float(result)

    def second_derivative(self, rho):
        rho = _clean_rho(rho)
        c = self.mean_inverse_size
        x0 = self.splice_point
        safe = np.maximum(rho, x0)
        hyperbolic = -2.0 * c / safe**3
        quadratic = np.full_like(rho, -2.0 * c / x0**3)
        result = np.where(rho >= x0, hyperbolic, quadratic)
        return result if result.ndim else float(result)

    def rate_for_utility(self, target: float) -> float:
        """Smallest ``ρ`` with ``M(ρ) >= target`` (inverse of ``M``).

        Useful for capacity dimensioning ("what rate does the smallest
        OD pair need for accuracy 0.9?", §V-C).  ``target`` must lie in
        ``[0, 1 + c)`` — the utility's asymptote is ``1 + c``.
        """
        c = self.mean_inverse_size
        if target <= 0.0:
            return 0.0
        if target >= 1.0 + c:
            raise ValueError(f"utility {target} unreachable (sup is {1 + c})")
        x0 = self.splice_point
        if target >= self.splice_value:
            # Invert the hyperbolic branch: 1 + c - c/ρ = target.
            return c / (1.0 + c - target)
        # Invert the quadratic branch on [0, x0] (increasing there).
        a0 = self.splice_value
        d1 = c / x0**2
        d2 = -2.0 * c / x0**3
        # Solve a0 + (ρ-x0) d1 + (ρ-x0)^2 d2/2 = target for ρ-x0 =: y <= 0.
        disc = d1**2 - 2.0 * d2 * (a0 - target)
        y = (-d1 + np.sqrt(disc)) / d2
        return float(x0 + y)


@dataclass(frozen=True)
class LogUtility(UtilityFunction):
    """``M(ρ) = log(1 + a ρ)`` — diminishing-returns utility.

    A standard proportional-fairness-style alternative for tasks (e.g.
    anomaly detection) where relative, not absolute, coverage matters.
    """

    steepness: float = 100.0

    def __post_init__(self) -> None:
        if self.steepness <= 0:
            raise ValueError("steepness must be positive")

    def value(self, rho):
        rho = np.asarray(rho, dtype=float)
        result = np.log1p(self.steepness * rho)
        return result if result.ndim else float(result)

    def derivative(self, rho):
        rho = np.asarray(rho, dtype=float)
        result = self.steepness / (1.0 + self.steepness * rho)
        return result if result.ndim else float(result)

    def second_derivative(self, rho):
        rho = np.asarray(rho, dtype=float)
        result = -(self.steepness**2) / (1.0 + self.steepness * rho) ** 2
        return result if result.ndim else float(result)


@dataclass(frozen=True)
class ExponentialUtility(UtilityFunction):
    """``M(ρ) = 1 - exp(-a ρ)`` — saturating detection-probability utility.

    Matches tasks where each sampled packet independently has a chance
    of revealing the phenomenon of interest (e.g. catching at least one
    packet of an anomaly).
    """

    steepness: float = 100.0

    def __post_init__(self) -> None:
        if self.steepness <= 0:
            raise ValueError("steepness must be positive")

    def value(self, rho):
        rho = np.asarray(rho, dtype=float)
        result = -np.expm1(-self.steepness * rho)
        return result if result.ndim else float(result)

    def derivative(self, rho):
        rho = np.asarray(rho, dtype=float)
        result = self.steepness * np.exp(-self.steepness * rho)
        return result if result.ndim else float(result)

    def second_derivative(self, rho):
        rho = np.asarray(rho, dtype=float)
        result = -(self.steepness**2) * np.exp(-self.steepness * rho)
        return result if result.ndim else float(result)


def accuracy_utilities(mean_inverse_sizes) -> list[MeanSquaredRelativeAccuracy]:
    """One paper utility per OD pair from a ``c_k`` vector."""
    return [
        MeanSquaredRelativeAccuracy(float(c)) for c in np.asarray(mean_inverse_sizes)
    ]
