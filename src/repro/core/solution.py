"""Solution objects: optimal rates plus solver diagnostics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .effective_rate import exact_effective_rates, linear_effective_rates
from .kkt import KKTReport
from .problem import SamplingProblem

__all__ = ["SolveAttempt", "SolverDiagnostics", "SamplingSolution"]

#: Rates below this are treated as "monitor off" when reporting.
_ACTIVE_RATE_EPS = 1e-9


@dataclass(frozen=True)
class SolveAttempt:
    """One attempt the solve supervisor made on a problem.

    ``stage`` is the fallback-chain stage (``"gradient_projection"``,
    ``"slsqp"``, ``"uniform"``, …); ``attempt`` counts retries within
    the stage from 0.  ``outcome`` is one of ``"ok"``, ``"error"``,
    ``"timeout"`` or ``"nonconverged"``.
    """

    stage: str
    attempt: int
    outcome: str
    message: str = ""
    wall_time_s: float = 0.0


@dataclass(frozen=True)
class SolverDiagnostics:
    """What happened inside the solver.

    ``constraint_releases`` counts the events (§IV-D) where active
    constraints with negative Lagrange multipliers had to be made
    inactive again — the paper reports 1.64 of them per run on average.
    ``wall_time_s`` (monotonic clock) and ``line_search_evaluations``
    (total 1-D trial points across all iterations) come from the
    solver's built-in timing, so every caller gets them without
    installing a trace; solvers that don't measure them leave the
    zero defaults.

    ``degraded`` marks answers that are *not* the exact optimum of the
    posed problem — a last-resort fallback configuration, a held
    previous interval, or an accepted non-converged iterate.  Exact
    solves (gradient projection or a SciPy reference method with a KKT
    certificate) keep it ``False`` even when they were reached through
    the supervisor's fallback chain.  ``attempts`` records every
    attempt a :func:`~repro.resilience.supervised_solve` run made,
    including the failed ones; unsupervised solves leave it empty.

    ``optimality_gap`` is a certified *a-posteriori* bound on how much
    objective the answer can be leaving on the table: ``f* − f(x) ≤
    optimality_gap`` (absolute, candidate-objective units), derived
    from concavity via the Frank-Wolfe duality gap
    ``∇f(x)·(y_LP − x)`` (see ``repro.scale``).  Exact methods whose
    certificate is the KKT report leave it ``None``.
    """

    method: str
    iterations: int
    constraint_releases: int
    converged: bool
    objective_value: float
    kkt: KKTReport | None = None
    message: str = ""
    wall_time_s: float = 0.0
    line_search_evaluations: int = 0
    degraded: bool = False
    attempts: tuple[SolveAttempt, ...] = ()
    optimality_gap: float | None = None


@dataclass(frozen=True)
class SamplingSolution:
    """Optimal sampling configuration for a :class:`SamplingProblem`.

    ``rates`` has one entry per network link; entries of exactly zero
    mean the link's monitor is deactivated — the *placement* half of
    the joint placement-and-rate answer.
    """

    problem: SamplingProblem
    rates: np.ndarray
    diagnostics: SolverDiagnostics

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=float)
        if rates.shape != (self.problem.num_links,):
            raise ValueError("rates vector does not match link count")
        object.__setattr__(self, "rates", rates)
        rates.setflags(write=False)

    # ------------------------------------------------------------------
    # measurement quality
    # ------------------------------------------------------------------
    @property
    def effective_rates(self) -> np.ndarray:
        """Per-OD effective sampling rates under the linear model (eq. 7)."""
        return linear_effective_rates(self.problem.routing, self.rates)

    @property
    def exact_effective_rates(self) -> np.ndarray:
        """Per-OD effective rates under the exact model (eq. 1)."""
        return exact_effective_rates(self.problem.routing, self.rates)

    @property
    def od_utilities(self) -> np.ndarray:
        """``M_k(ρ_k)`` per OD pair (linear model, as optimized)."""
        rho = self.effective_rates
        return np.array(
            [u.value(r) for u, r in zip(self.problem.utilities, rho)]
        )

    @property
    def objective_value(self) -> float:
        """``Σ_k M_k(ρ_k)``."""
        return float(self.od_utilities.sum())

    # ------------------------------------------------------------------
    # placement view
    # ------------------------------------------------------------------
    @property
    def active_link_indices(self) -> list[int]:
        """Links whose monitor is on (``p_i > 0``)."""
        return [int(i) for i in np.flatnonzero(self.rates > _ACTIVE_RATE_EPS)]

    @property
    def num_active_monitors(self) -> int:
        return len(self.active_link_indices)

    def monitors_per_od(self) -> np.ndarray:
        """How many active monitors observe each OD pair.

        The paper's assumption check (§V-B): at the optimum each OD
        pair is sampled on at most ~2 links.
        """
        active = self.rates > _ACTIVE_RATE_EPS
        return (self.problem.routing[:, active] > 0).sum(axis=1)

    # ------------------------------------------------------------------
    # budget view
    # ------------------------------------------------------------------
    @property
    def budget_used_rate_pps(self) -> float:
        """``Σ p_i U_i`` in sampled packets per second."""
        return float(self.rates @ self.problem.link_loads_pps)

    @property
    def budget_used_packets(self) -> float:
        """Sampled packets per measurement interval (compare to θ)."""
        return self.budget_used_rate_pps * self.problem.interval_seconds

    @property
    def contribution_fractions(self) -> np.ndarray:
        """Per-link share of the consumed budget (Table I bottom row)."""
        used = self.budget_used_rate_pps
        if used <= 0:
            return np.zeros_like(self.rates)
        return self.rates * self.problem.link_loads_pps / used

    # ------------------------------------------------------------------
    def summary(self, link_names: list[str] | None = None) -> str:
        """Multi-line human-readable report of the active monitors."""
        lines = [
            f"objective Σ M = {self.objective_value:.4f}  "
            f"({self.diagnostics.method}, {self.diagnostics.iterations} iters, "
            f"converged={self.diagnostics.converged})",
            f"budget: {self.budget_used_packets:,.0f} of "
            f"{self.problem.theta_packets:,.0f} packets/interval",
            f"active monitors: {self.num_active_monitors} of "
            f"{self.problem.num_links} links",
        ]
        fractions = self.contribution_fractions
        for index in self.active_link_indices:
            name = link_names[index] if link_names else f"link[{index}]"
            lines.append(
                f"  {name:>16}: p = {self.rates[index]:.6f}  "
                f"({fractions[index]:6.1%} of budget)"
            )
        return "\n".join(lines)
