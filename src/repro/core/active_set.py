"""Active-set bookkeeping and gradient projection (§IV-A, §IV-D).

The constraint set is the polytope ``Ω = {x : x·u = θ', 0 <= x <= α}``
over the candidate links.  At any iterate each bound constraint is
either *active* (met with equality) or *inactive*; the capacity
equality is always active.  The search direction is the gradient
projected onto the subspace spanned by the active constraints' null
space.

Because every active bound's normal is a coordinate axis, the
projector has a closed form: zero the active coordinates, then remove
the component along the load vector restricted to the free
coordinates.  This avoids forming ``I − Nᵀ(NNᵀ)⁻¹N`` explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ActiveSet", "FREE", "AT_LOWER", "AT_UPPER", "Multipliers"]

FREE = 0
AT_LOWER = 1  # x_i = 0, monitor deactivated
AT_UPPER = 2  # x_i = α_i, monitor saturated


@dataclass(frozen=True)
class Multipliers:
    """Lagrange multipliers of eq. (6) at a candidate point.

    ``lam`` prices the capacity equality; ``nu[i]`` (only meaningful on
    links active at the lower bound) and ``mu[i]`` (upper bound) must be
    non-negative at the optimum — a negative value identifies a
    constraint whose release improves the objective (§IV-D).
    """

    lam: float
    mu: np.ndarray
    nu: np.ndarray

    def negative_lower(self, tol: float) -> np.ndarray:
        """Indices of lower-bound actives with ``ν_i < -tol``."""
        return np.flatnonzero(self.nu < -tol)

    def negative_upper(self, tol: float) -> np.ndarray:
        """Indices of upper-bound actives with ``μ_i < -tol``."""
        return np.flatnonzero(self.mu < -tol)


class ActiveSet:
    """Tracks which bound constraints are active on the candidate links."""

    def __init__(self, loads: np.ndarray, alpha: np.ndarray) -> None:
        loads = np.asarray(loads, dtype=float)
        alpha = np.asarray(alpha, dtype=float)
        if loads.ndim != 1 or loads.shape != alpha.shape:
            raise ValueError("loads and alpha must be 1-D and equally long")
        if np.any(loads <= 0):
            raise ValueError("candidate links must have positive load")
        if np.any(alpha <= 0):
            raise ValueError("candidate links must have positive alpha")
        self.loads = loads
        self.alpha = alpha
        self.status = np.full(loads.shape, FREE, dtype=np.int8)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.status.shape[0]

    @property
    def free_mask(self) -> np.ndarray:
        return self.status == FREE

    @property
    def lower_mask(self) -> np.ndarray:
        return self.status == AT_LOWER

    @property
    def upper_mask(self) -> np.ndarray:
        return self.status == AT_UPPER

    def num_free(self) -> int:
        return int(self.free_mask.sum())

    def sync_with_point(self, x: np.ndarray, atol: float = 1e-12) -> None:
        """Mark constraints active where ``x`` sits on a bound."""
        x = np.asarray(x, dtype=float)
        self.status[:] = FREE
        self.status[x <= atol] = AT_LOWER
        self.status[x >= self.alpha - atol] = AT_UPPER

    def activate_lower(self, index: int) -> None:
        self.status[index] = AT_LOWER

    def activate_upper(self, index: int) -> None:
        self.status[index] = AT_UPPER

    def release(self, indices: np.ndarray) -> None:
        """Make the given active constraints inactive again."""
        self.status[indices] = FREE

    # ------------------------------------------------------------------
    # projection
    # ------------------------------------------------------------------
    def project(self, g: np.ndarray) -> np.ndarray:
        """Project ``g`` onto the active constraints' null space.

        Zeroes active coordinates, then removes the component along the
        free part of the load vector so that moving along the result
        keeps ``x·u`` constant.
        """
        g = np.asarray(g, dtype=float)
        projected = np.where(self.free_mask, g, 0.0)
        u_free = np.where(self.free_mask, self.loads, 0.0)
        norm2 = float(u_free @ u_free)
        if norm2 > 0.0:
            projected -= (float(projected @ u_free) / norm2) * u_free
        return projected

    # ------------------------------------------------------------------
    # multipliers (KKT, §IV-D)
    # ------------------------------------------------------------------
    def multipliers(self, g: np.ndarray) -> Multipliers:
        """Lagrange multipliers for gradient ``g`` at the current set.

        Stationarity of eq. (6) reads ``g_i = λ u_i + μ_i − ν_i`` with
        ``μ_i`` (resp. ``ν_i``) zero unless link ``i`` is active at its
        upper (resp. lower) bound:

        * free ``i``:  λ = g_i / u_i — estimated by weighted least
          squares over the free coordinates;
        * lower-active ``i``:  ν_i = λ u_i − g_i;
        * upper-active ``i``:  μ_i = g_i − λ u_i.

        With no free coordinate, λ is indeterminate within an interval;
        we pick the value minimizing the worst constraint-multiplier
        violation (midpoint of the feasibility interval), so the caller
        sees negative multipliers exactly when no feasible λ exists.
        """
        g = np.asarray(g, dtype=float)
        free = self.free_mask
        ratios = g / self.loads
        if np.any(free):
            u_free = self.loads[free]
            lam = float(g[free] @ u_free) / float(u_free @ u_free)
        else:
            # λ must satisfy ratios[lower] <= λ <= ratios[upper].
            lower_bound = (
                float(ratios[self.lower_mask].max())
                if np.any(self.lower_mask)
                else -np.inf
            )
            upper_bound = (
                float(ratios[self.upper_mask].min())
                if np.any(self.upper_mask)
                else np.inf
            )
            if lower_bound == -np.inf and upper_bound == np.inf:
                lam = 0.0
            elif lower_bound == -np.inf:
                lam = upper_bound
            elif upper_bound == np.inf:
                lam = lower_bound
            else:
                lam = (lower_bound + upper_bound) / 2.0

        mu = np.zeros(self.size)
        nu = np.zeros(self.size)
        upper = self.upper_mask
        lower = self.lower_mask
        mu[upper] = g[upper] - lam * self.loads[upper]
        nu[lower] = lam * self.loads[lower] - g[lower]
        return Multipliers(lam=lam, mu=mu, nu=nu)

    def max_step(self, x: np.ndarray, s: np.ndarray) -> tuple[float, np.ndarray]:
        """Largest ``t`` with ``x + t s`` inside the bounds.

        Returns ``(t_max, blocking)`` where ``blocking`` lists the
        coordinates whose bound is reached at ``t_max`` (empty when the
        direction never leaves the box).
        """
        x = np.asarray(x, dtype=float)
        s = np.asarray(s, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            to_lower = np.where(s < 0, -x / s, np.inf)
            to_upper = np.where(s > 0, (self.alpha - x) / s, np.inf)
        steps = np.minimum(to_lower, to_upper)
        steps[~self.free_mask] = np.inf
        t_max = float(steps.min())
        if not np.isfinite(t_max):
            return np.inf, np.array([], dtype=int)
        t_max = max(t_max, 0.0)
        blocking = np.flatnonzero(np.isclose(steps, t_max, rtol=1e-9, atol=1e-15))
        return t_max, blocking
