"""Routing-matrix linear operator: the solver's hot-path abstraction.

Everything the optimizer does with the routing matrix ``R`` reduces to
three operations: ``ρ = R x`` (effective rates), ``∇f = Rᵀ y``
(gradient assembly) and column-subset restriction (the solver works on
candidate links only).  On backbone-scale instances ``R`` is extremely
sparse — each OD pair crosses a handful of links — so a CSR backend
turns both matvecs from ``O(K·n)`` into ``O(nnz)``.

:class:`RoutingOperator` hides the storage choice behind that
three-method surface.  ``from_matrix`` auto-selects the backend by
density (dense input stays dense below :data:`MIN_AUTO_SPARSE_SIZE`
entries, where CSR overhead beats the savings) and accepts dense
arrays, SciPy sparse matrices or an existing operator, so callers can
thread whatever representation they hold.  Both backends cache a
contiguous transpose the first time ``rmatvec`` is called: on the
dense path ``R.T`` is a strided view with hostile memory access, and
on the sparse path a CSR of the transpose keeps the gradient
assembly row-major.

SciPy is an optional dependency here: without it every operator
silently falls back to the dense backend, so nothing above this module
needs to gate on its presence.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..obs.metrics import METRICS

try:  # pragma: no cover - exercised implicitly on import
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is present in CI
    _sparse = None

__all__ = [
    "RoutingOperator",
    "DenseRoutingOperator",
    "SparseRoutingOperator",
    "DENSITY_THRESHOLD",
    "MIN_AUTO_SPARSE_SIZE",
]

#: Densities at or below this auto-select the CSR backend.
DENSITY_THRESHOLD = 0.25

#: Matrices with fewer entries than this stay dense under auto-selection:
#: at that size the constant overhead of CSR indexing outweighs any win.
MIN_AUTO_SPARSE_SIZE = 4096


class RoutingOperator:
    """A ``K x n`` routing operator with dense and sparse backends.

    Subclasses implement :meth:`matvec`, :meth:`rmatvec`,
    :meth:`restrict_columns` and the storage accessors; use
    :meth:`from_matrix` to construct one with automatic backend
    selection.
    """

    #: ``"dense"`` or ``"sparse"`` — which storage backs the operator.
    backend: str = ""

    @staticmethod
    def from_matrix(
        matrix: "np.ndarray | RoutingOperator | object",
        prefer: str | None = None,
        density_threshold: float = DENSITY_THRESHOLD,
    ) -> "RoutingOperator":
        """Wrap ``matrix`` in the best-suited backend.

        Parameters
        ----------
        matrix:
            2-D dense array, SciPy sparse matrix, or an existing
            operator (returned as-is when its backend already matches).
        prefer:
            Force ``"dense"`` or ``"sparse"`` instead of auto-selecting
            by density.  ``"sparse"`` without SciPy installed raises.
        density_threshold:
            Auto-selection boundary: dense input with
            ``nnz / size <= density_threshold`` (and at least
            :data:`MIN_AUTO_SPARSE_SIZE` entries) goes to CSR.
        """
        if prefer not in (None, "dense", "sparse"):
            raise ValueError("prefer must be None, 'dense' or 'sparse'")
        if prefer == "sparse" and _sparse is None:
            raise ValueError("sparse backend requires scipy")

        if isinstance(matrix, RoutingOperator):
            if prefer is None or matrix.backend == prefer:
                return matrix
            if prefer == "dense":
                return DenseRoutingOperator(matrix.toarray())
            return SparseRoutingOperator(matrix.toarray())

        if _sparse is not None and _sparse.issparse(matrix):
            if prefer == "dense":
                return DenseRoutingOperator(matrix.toarray())
            return SparseRoutingOperator(matrix)

        dense = np.asarray(matrix, dtype=float)
        if dense.ndim != 2:
            raise ValueError("routing matrix must be 2-D")
        if prefer == "dense":
            return DenseRoutingOperator(dense)
        if prefer == "sparse":
            return SparseRoutingOperator(dense)
        if (
            _sparse is not None
            and dense.size >= MIN_AUTO_SPARSE_SIZE
            and np.count_nonzero(dense) <= density_threshold * dense.size
        ):
            return SparseRoutingOperator(dense)
        return DenseRoutingOperator(dense)

    # -- the hot-path surface -------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        raise NotImplementedError

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``R x`` — effective rates of a sampling-rate vector."""
        raise NotImplementedError

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``Rᵀ y`` — per-link accumulation of per-OD quantities."""
        raise NotImplementedError

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """``R X`` for a stack of rate vectors, ``X`` of shape (n, m).

        One BLAS/CSR product evaluates the effective rates of ``m``
        sampling configurations at once — the kernel behind the batched
        objective/gradient evaluation (θ sweeps, candidate ranking,
        family KKT verification).
        """
        raise NotImplementedError

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        """``Rᵀ Y`` for a stack of per-OD vectors, ``Y`` of shape (K, m)."""
        raise NotImplementedError

    def restrict_columns(
        self, indices: "np.ndarray | Sequence[int] | Iterable[int]"
    ) -> "RoutingOperator":
        """Operator over the given link columns, preserving their order."""
        raise NotImplementedError

    # -- storage accessors ----------------------------------------------
    def toarray(self) -> np.ndarray:
        """Materialize the dense ``K x n`` array (fresh, writable)."""
        raise NotImplementedError

    def tosparse(self):
        """The backing SciPy CSR matrix, or ``None`` on the dense backend.

        Presolve and the shared-memory publisher use this to reach the
        native storage without a dense round trip; treat the result as
        read-only.
        """
        return None

    def column_sums(self) -> np.ndarray:
        """``Σ_k r_{k,i}`` per link — traversal totals."""
        raise NotImplementedError

    def entry_range(self) -> tuple[float, float]:
        """(min, max) over all entries, implicit zeros included."""
        raise NotImplementedError

    @property
    def nnz(self) -> int:
        raise NotImplementedError

    @property
    def density(self) -> float:
        """Fraction of structurally non-zero entries."""
        rows, cols = self.shape
        size = rows * cols
        return self.nnz / size if size else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        rows, cols = self.shape
        return (
            f"{type(self).__name__}({rows}x{cols}, "
            f"density={self.density:.3f})"
        )


class DenseRoutingOperator(RoutingOperator):
    """Plain ``numpy`` backend with a cached C-contiguous transpose."""

    backend = "dense"

    def __init__(self, matrix: np.ndarray):
        matrix = np.ascontiguousarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError("routing matrix must be 2-D")
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._transpose: np.ndarray | None = None
        METRICS.increment("routing.backend.dense")

    @property
    def shape(self) -> tuple[int, int]:
        return self._matrix.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        METRICS.increment("routing.matvec.dense")
        return self._matrix @ np.asarray(x, dtype=float)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        METRICS.increment("routing.rmatvec.dense")
        # R.T is a strided view; multiply through a contiguous copy so
        # repeated gradient assemblies stream memory row-major.
        if self._transpose is None:
            transpose = np.ascontiguousarray(self._matrix.T)
            transpose.setflags(write=False)
            self._transpose = transpose
        return self._transpose @ np.asarray(y, dtype=float)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        METRICS.increment("routing.matmat.dense")
        return self._matrix @ np.ascontiguousarray(X, dtype=float)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        METRICS.increment("routing.rmatmat.dense")
        if self._transpose is None:
            transpose = np.ascontiguousarray(self._matrix.T)
            transpose.setflags(write=False)
            self._transpose = transpose
        return self._transpose @ np.ascontiguousarray(Y, dtype=float)

    def restrict_columns(self, indices) -> "DenseRoutingOperator":
        cols = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices)
        return DenseRoutingOperator(self._matrix[:, cols])

    def toarray(self) -> np.ndarray:
        return self._matrix.copy()

    def column_sums(self) -> np.ndarray:
        return self._matrix.sum(axis=0)

    def entry_range(self) -> tuple[float, float]:
        return float(self._matrix.min()), float(self._matrix.max())

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._matrix))


class SparseRoutingOperator(RoutingOperator):
    """CSR backend; ``rmatvec`` runs off a cached CSR of the transpose."""

    backend = "sparse"

    def __init__(self, matrix):
        if _sparse is None:  # pragma: no cover - guarded by from_matrix
            raise RuntimeError("sparse backend requires scipy")
        csr = _sparse.csr_matrix(matrix, dtype=float)
        if csr.ndim != 2:  # pragma: no cover - csr_matrix enforces 2-D
            raise ValueError("routing matrix must be 2-D")
        csr.sum_duplicates()
        self._csr = csr
        self._csr_transpose = None
        METRICS.increment("routing.backend.sparse")

    @property
    def shape(self) -> tuple[int, int]:
        return self._csr.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        METRICS.increment("routing.matvec.sparse")
        return self._csr @ np.asarray(x, dtype=float)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        METRICS.increment("routing.rmatvec.sparse")
        if self._csr_transpose is None:
            self._csr_transpose = self._csr.T.tocsr()
        return self._csr_transpose @ np.asarray(y, dtype=float)

    def matmat(self, X: np.ndarray) -> np.ndarray:
        METRICS.increment("routing.matmat.sparse")
        return self._csr @ np.ascontiguousarray(X, dtype=float)

    def rmatmat(self, Y: np.ndarray) -> np.ndarray:
        METRICS.increment("routing.rmatmat.sparse")
        if self._csr_transpose is None:
            self._csr_transpose = self._csr.T.tocsr()
        return self._csr_transpose @ np.ascontiguousarray(Y, dtype=float)

    def restrict_columns(self, indices) -> "SparseRoutingOperator":
        cols = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices)
        # Column selection is a CSC-natural operation; route through it
        # so the restriction stays O(nnz of the kept columns).
        return SparseRoutingOperator(self._csr.tocsc()[:, cols].tocsr())

    def toarray(self) -> np.ndarray:
        return self._csr.toarray()

    def tosparse(self):
        return self._csr

    def column_sums(self) -> np.ndarray:
        return np.asarray(self._csr.sum(axis=0)).ravel()

    def entry_range(self) -> tuple[float, float]:
        data = self._csr.data
        rows, cols = self._csr.shape
        lo = float(data.min()) if data.size else 0.0
        hi = float(data.max()) if data.size else 0.0
        if self._csr.nnz < rows * cols:  # implicit zeros present
            lo = min(lo, 0.0)
            hi = max(hi, 0.0)
        return lo, hi

    @property
    def nnz(self) -> int:
        return int(self._csr.nnz)
