"""SciPy reference solvers for cross-validation.

The gradient-projection algorithm is the paper's contribution; these
wrappers solve the identical convex program with off-the-shelf
constrained optimizers (SLSQP and trust-constr) so that tests and
ablation benchmarks can certify both solvers find the same global
optimum — the property the paper claims over heuristic approaches
(§II: "Our approach ... allows to indicate whether a solution
corresponds to the global optimum").
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, minimize

from .gradient_projection import initial_feasible_point
from .kkt import check_kkt
from .objective import Objective, SumUtilityObjective
from .problem import SamplingProblem
from .solution import SamplingSolution, SolverDiagnostics

__all__ = ["solve_scipy"]

_METHODS = ("SLSQP", "trust-constr")


def solve_scipy(
    problem: SamplingProblem,
    method: str = "SLSQP",
    objective: Objective | None = None,
    max_iterations: int = 500,
    tolerance: float = 1e-12,
) -> SamplingSolution:
    """Solve a :class:`SamplingProblem` with a SciPy optimizer.

    ``method`` is ``"SLSQP"`` or ``"trust-constr"``.  Returns the same
    :class:`SamplingSolution` shape as the gradient-projection solver,
    including a KKT certificate.
    """
    t_start = perf_counter()
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    problem.check_feasible()

    cand = np.flatnonzero(problem.candidate_mask)
    loads = problem.link_loads_pps[cand]
    alpha = problem.alpha[cand]
    if objective is None:
        objective = SumUtilityObjective(
            problem.candidate_routing_op(), problem.utilities
        )

    x0 = initial_feasible_point(loads, alpha, problem.theta_rate_pps)

    def negated(x: np.ndarray) -> float:
        return -objective.value(np.clip(x, 0.0, alpha))

    def negated_grad(x: np.ndarray) -> np.ndarray:
        return -objective.gradient(np.clip(x, 0.0, alpha))

    constraint = LinearConstraint(
        loads[np.newaxis, :], problem.theta_rate_pps, problem.theta_rate_pps
    )
    bounds = Bounds(np.zeros_like(alpha), alpha)

    if method == "SLSQP":
        result = minimize(
            negated,
            x0,
            jac=negated_grad,
            bounds=bounds,
            constraints=[constraint],
            method="SLSQP",
            options={"maxiter": max_iterations, "ftol": tolerance},
        )
    else:
        result = minimize(
            negated,
            x0,
            jac=negated_grad,
            bounds=bounds,
            constraints=[constraint],
            method="trust-constr",
            options={"maxiter": max_iterations * 10, "gtol": 1e-10, "xtol": 1e-12},
        )

    x = np.clip(result.x, 0.0, alpha)
    rates = np.zeros(problem.num_links)
    rates[cand] = x
    rates[problem.free_saturated_mask] = problem.alpha[problem.free_saturated_mask]

    # SLSQP sometimes exits with "positive directional derivative" when
    # pushed to very tight ftol despite sitting on the optimum; trust
    # the KKT certificate over the solver's own status in that case.
    kkt = check_kkt(problem, rates, tolerance=1e-4)
    converged = bool(result.success) or kkt.satisfied
    diagnostics = SolverDiagnostics(
        method=f"scipy:{method}",
        iterations=int(getattr(result, "nit", 0) or 0),
        constraint_releases=0,
        converged=converged,
        objective_value=objective.value(x),
        kkt=kkt,
        message=str(result.message),
        wall_time_s=perf_counter() - t_start,
    )
    return SamplingSolution(problem=problem, rates=rates, diagnostics=diagnostics)
