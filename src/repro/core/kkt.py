"""Karush-Kuhn-Tucker verification (§IV-A, §IV-D).

The solution space is a convex polytope and the objective is concave,
so the KKT conditions are sufficient for global optimality.  This
module certifies an arbitrary feasible point *independently of how it
was produced* — the unit tests use it to cross-check the gradient-
projection solver and the SciPy reference solvers against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .active_set import ActiveSet
from .objective import Objective, SumUtilityObjective
from .problem import SamplingProblem

__all__ = ["KKTReport", "check_kkt"]


@dataclass(frozen=True)
class KKTReport:
    """Certificate of (approximate) optimality for a feasible point.

    Attributes
    ----------
    satisfied:
        True when all conditions hold within tolerance.
    lam:
        Multiplier of the capacity equality (the shadow price of θ:
        utility gained per extra unit of sampling rate budget).
    stationarity_residual:
        Max absolute violation of ``g_i = λ u_i`` over free links,
        relative to the gradient scale.
    worst_multiplier:
        Most negative bound multiplier (0 when none is negative).
    feasibility_residual:
        Relative violation of the capacity equality.
    bound_violation:
        Largest bound violation of the point itself.
    """

    satisfied: bool
    lam: float
    stationarity_residual: float
    worst_multiplier: float
    feasibility_residual: float
    bound_violation: float


def check_kkt(
    problem: SamplingProblem,
    p: np.ndarray,
    tolerance: float = 1e-6,
    objective: Objective | None = None,
    gradient: np.ndarray | None = None,
) -> KKTReport:
    """Verify the KKT conditions for a full-length rate vector ``p``.

    ``p`` has one entry per network link.  Only candidate links (see
    :class:`SamplingProblem`) enter the conditions; non-candidate links
    are required to carry ``p_i = 0`` except free-saturated ones.

    ``tolerance`` is relative: residuals are normalized by the gradient
    magnitude, multipliers by the gradient/load scale.

    ``gradient`` optionally supplies ``∇f`` at ``p[cand]`` when the
    caller has already evaluated it (the solver certifies its final
    iterate this way); it is trusted, so it must belong to the same
    objective and point.
    """
    p = np.asarray(p, dtype=float)
    if p.shape != (problem.num_links,):
        raise ValueError(
            f"p has shape {p.shape}, expected ({problem.num_links},)"
        )
    cand = np.flatnonzero(problem.candidate_mask)
    x = p[cand]
    loads = problem.link_loads_pps[cand]
    alpha = problem.alpha[cand]

    if objective is None:
        objective = SumUtilityObjective(
            problem.candidate_routing_op(), problem.utilities
        )

    bound_violation = float(
        max(np.maximum(-x, 0.0).max(initial=0.0), np.maximum(x - alpha, 0.0).max(initial=0.0))
    )

    target_rate = problem.theta_rate_pps
    feasibility_residual = abs(float(x @ loads) - target_rate) / max(target_rate, 1e-12)

    active = ActiveSet(loads, alpha)
    # Classify bound activity with a tolerance proportional to alpha.
    active.sync_with_point(x, atol=max(1e-9, 1e-6 * float(alpha.min())))

    if gradient is None:
        g = objective.gradient(x)
    else:
        g = np.asarray(gradient, dtype=float)
        if g.shape != x.shape:
            raise ValueError("precomputed gradient does not match candidates")
    scale = max(1.0, float(np.abs(g).max()))
    mult = active.multipliers(g)

    free = active.free_mask
    if np.any(free):
        stationarity = float(
            np.abs(g[free] - mult.lam * loads[free]).max()
        ) / scale
    else:
        stationarity = 0.0

    worst = 0.0
    if np.any(active.lower_mask):
        worst = min(worst, float(mult.nu[active.lower_mask].min()))
    if np.any(active.upper_mask):
        worst = min(worst, float(mult.mu[active.upper_mask].min()))
    worst /= scale

    satisfied = (
        bound_violation <= tolerance
        and feasibility_residual <= tolerance
        and stationarity <= tolerance
        and worst >= -tolerance
    )
    return KKTReport(
        satisfied=satisfied,
        lam=mult.lam,
        stationarity_residual=stationarity,
        worst_multiplier=worst,
        feasibility_residual=feasibility_residual,
        bound_violation=bound_violation,
    )
