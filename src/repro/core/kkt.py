"""Karush-Kuhn-Tucker verification (§IV-A, §IV-D).

The solution space is a convex polytope and the objective is concave,
so the KKT conditions are sufficient for global optimality.  This
module certifies an arbitrary feasible point *independently of how it
was produced* — the unit tests use it to cross-check the gradient-
projection solver and the SciPy reference solvers against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .active_set import ActiveSet
from .objective import Objective, SumUtilityObjective
from .problem import SamplingProblem

__all__ = ["KKTReport", "check_kkt", "check_kkt_family"]


@dataclass(frozen=True)
class KKTReport:
    """Certificate of (approximate) optimality for a feasible point.

    Attributes
    ----------
    satisfied:
        True when all conditions hold within tolerance.
    lam:
        Multiplier of the capacity equality (the shadow price of θ:
        utility gained per extra unit of sampling rate budget).
    stationarity_residual:
        Max absolute violation of ``g_i = λ u_i`` over free links,
        relative to the gradient scale.
    worst_multiplier:
        Most negative bound multiplier (0 when none is negative).
    feasibility_residual:
        Relative violation of the capacity equality.
    bound_violation:
        Largest bound violation of the point itself.
    """

    satisfied: bool
    lam: float
    stationarity_residual: float
    worst_multiplier: float
    feasibility_residual: float
    bound_violation: float


def check_kkt(
    problem: SamplingProblem,
    p: np.ndarray,
    tolerance: float = 1e-6,
    objective: Objective | None = None,
    gradient: np.ndarray | None = None,
) -> KKTReport:
    """Verify the KKT conditions for a full-length rate vector ``p``.

    ``p`` has one entry per network link.  Only candidate links (see
    :class:`SamplingProblem`) enter the conditions; non-candidate links
    are required to carry ``p_i = 0`` except free-saturated ones.

    ``tolerance`` is relative: residuals are normalized by the gradient
    magnitude, multipliers by the gradient/load scale.

    ``gradient`` optionally supplies ``∇f`` at ``p[cand]`` when the
    caller has already evaluated it (the solver certifies its final
    iterate this way); it is trusted, so it must belong to the same
    objective and point.
    """
    p = np.asarray(p, dtype=float)
    if p.shape != (problem.num_links,):
        raise ValueError(
            f"p has shape {p.shape}, expected ({problem.num_links},)"
        )
    cand = np.flatnonzero(problem.candidate_mask)
    x = p[cand]
    loads = problem.link_loads_pps[cand]
    alpha = problem.alpha[cand]

    if objective is None:
        objective = SumUtilityObjective(
            problem.candidate_routing_op(), problem.utilities
        )

    if gradient is None:
        g = objective.gradient(x)
    else:
        g = np.asarray(gradient, dtype=float)
        if g.shape != x.shape:
            raise ValueError("precomputed gradient does not match candidates")
    return _report_from_gradient(x, g, loads, alpha, problem.theta_rate_pps, tolerance)


def _report_from_gradient(
    x: np.ndarray,
    g: np.ndarray,
    loads: np.ndarray,
    alpha: np.ndarray,
    target_rate: float,
    tolerance: float,
) -> KKTReport:
    """Assemble one certificate from a candidate point and its gradient."""
    bound_violation = float(
        max(np.maximum(-x, 0.0).max(initial=0.0), np.maximum(x - alpha, 0.0).max(initial=0.0))
    )
    feasibility_residual = abs(float(x @ loads) - target_rate) / max(target_rate, 1e-12)

    active = ActiveSet(loads, alpha)
    # Classify bound activity with a tolerance proportional to alpha.
    active.sync_with_point(x, atol=max(1e-9, 1e-6 * float(alpha.min())))

    scale = max(1.0, float(np.abs(g).max()))
    mult = active.multipliers(g)

    free = active.free_mask
    if np.any(free):
        stationarity = float(
            np.abs(g[free] - mult.lam * loads[free]).max()
        ) / scale
    else:
        stationarity = 0.0

    worst = 0.0
    if np.any(active.lower_mask):
        worst = min(worst, float(mult.nu[active.lower_mask].min()))
    if np.any(active.upper_mask):
        worst = min(worst, float(mult.mu[active.upper_mask].min()))
    worst /= scale

    satisfied = (
        bound_violation <= tolerance
        and feasibility_residual <= tolerance
        and stationarity <= tolerance
        and worst >= -tolerance
    )
    return KKTReport(
        satisfied=satisfied,
        lam=mult.lam,
        stationarity_residual=stationarity,
        worst_multiplier=worst,
        feasibility_residual=feasibility_residual,
        bound_violation=bound_violation,
    )


def check_kkt_family(
    problem: SamplingProblem,
    rates: np.ndarray,
    tolerance: float = 1e-6,
    objective: Objective | None = None,
    theta_rates: np.ndarray | Sequence[float] | None = None,
) -> list[KKTReport]:
    """Certify a *family* of full-length rate vectors in one batched pass.

    ``rates`` has shape ``(m, num_links)`` — one row per configuration
    (e.g. every point of a θ sweep, or every candidate the adaptive
    controller considers).  All ``m`` gradients are assembled with a
    single ``Rᵀ Y`` rmatmat through the objective's stacked kernel
    instead of ``m`` separate rmatvecs; the per-point multiplier checks
    are then O(candidates) each.

    By default every member is checked against the problem's own
    ``θ/T``; a family over *different* capacities — a θ sweep — passes
    its per-member equality targets through ``theta_rates`` (length m,
    in packets per second).  Everything else a sweep member could vary
    (routing, loads, bounds) is shared by construction, so one
    candidate set and one stacked gradient assembly serve the whole
    family.
    """
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 2 or rates.shape[1] != problem.num_links:
        raise ValueError(
            f"rates have shape {rates.shape}, expected (m, {problem.num_links})"
        )
    if theta_rates is None:
        targets = np.full(rates.shape[0], problem.theta_rate_pps)
    else:
        targets = np.asarray(theta_rates, dtype=float)
        if targets.shape != (rates.shape[0],):
            raise ValueError(
                f"theta_rates have shape {targets.shape}, expected "
                f"({rates.shape[0]},)"
            )
    cand = np.flatnonzero(problem.candidate_mask)
    loads = problem.link_loads_pps[cand]
    alpha = problem.alpha[cand]
    if objective is None:
        objective = SumUtilityObjective(
            problem.candidate_routing_op(), problem.utilities
        )
    X = np.ascontiguousarray(rates[:, cand].T)  # (candidates, m)
    if hasattr(objective, "gradient_stack"):
        gradients = objective.gradient_stack(X)
    else:  # objectives without a stacked kernel: one rmatvec per member
        gradients = np.column_stack(
            [objective.gradient(X[:, j]) for j in range(X.shape[1])]
        )
    return [
        _report_from_gradient(
            X[:, j], gradients[:, j], loads, alpha,
            float(targets[j]), tolerance,
        )
        for j in range(X.shape[1])
    ]
