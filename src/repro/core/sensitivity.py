"""Sensitivity analysis of the optimal configuration.

The Lagrange multiplier λ of the capacity constraint is the *shadow
price* of monitoring capacity: at the optimum, one extra unit of
sampled-packets-per-second budget buys λ extra utility.  This module
exposes that interpretation and two derived reports operators care
about:

* a capacity-response curve ``θ ↦ (objective, λ, worst utility)``
  showing diminishing returns in the budget, and
* per-link marginal values: how much objective a *deactivated* monitor
  would contribute per unit of budget if it were switched on — exactly
  the quantity the KKT multipliers ``ν_i`` price.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .kkt import check_kkt
from .objective import SumUtilityObjective
from .problem import SamplingProblem
from .solution import SamplingSolution
from .solver import solve

__all__ = [
    "CapacityResponsePoint",
    "capacity_response",
    "marginal_link_values",
    "shadow_price",
]


@dataclass(frozen=True)
class CapacityResponsePoint:
    """One point of the capacity-response curve."""

    theta_packets: float
    objective: float
    shadow_price: float
    worst_utility: float
    active_monitors: int


def shadow_price(problem: SamplingProblem, solution: SamplingSolution) -> float:
    """λ at the optimum: utility gained per extra pkt/s of budget."""
    return check_kkt(problem, solution.rates).lam


def capacity_response(
    problem: SamplingProblem,
    thetas: np.ndarray | list[float],
    method: str = "gradient_projection",
) -> list[CapacityResponsePoint]:
    """Solve the problem across a θ grid and report the response curve.

    θ values beyond the absorbable maximum are clamped (saturation).
    The shadow prices must be non-increasing in θ — the objective is
    concave in the budget — which doubles as a solver sanity check.
    """
    points = []
    for theta in thetas:
        if theta <= 0:
            raise ValueError("theta values must be positive")
        clamped = problem.with_theta(float(theta)).clamped()
        solution = solve(clamped, method=method)
        points.append(
            CapacityResponsePoint(
                theta_packets=float(theta),
                objective=solution.objective_value,
                shadow_price=shadow_price(clamped, solution),
                worst_utility=float(solution.od_utilities.min()),
                active_monitors=solution.num_active_monitors,
            )
        )
    return points


def marginal_link_values(
    problem: SamplingProblem, solution: SamplingSolution
) -> np.ndarray:
    """Per-link marginal objective value per unit of budget.

    For link ``i`` the gradient of the objective w.r.t. ``p_i`` divided
    by its budget cost ``U_i`` — the "bang per buck" of link ``i`` at
    the optimum.  Active links all sit at the shadow price λ; inactive
    (deactivated) links sit strictly below it, and *how far* below
    ranks how close each dark monitor is to being worth activating.

    Links with zero load or outside the monitorable set get value 0.
    """
    cand = np.flatnonzero(problem.candidate_mask)
    objective = SumUtilityObjective(
        problem.candidate_routing_op(), problem.utilities
    )
    g = objective.gradient(solution.rates[cand])
    values = np.zeros(problem.num_links)
    values[cand] = g / problem.link_loads_pps[cand]
    return values
