"""Quantizing optimal rates to deployable 1-in-N sampling.

Router implementations (sampled NetFlow, §I) configure sampling as
"1 in N packets" with integer N, not as an arbitrary probability.  The
optimizer's continuous rates must therefore be rounded before
deployment.  This module quantizes a solution onto the ``{1/N}`` grid
while respecting the capacity constraint, and measures the utility
cost of quantization — a practical-deployment ablation the paper
leaves implicit.

Strategy: each positive rate is first rounded to the *nearest* grid
point; if the configuration then overshoots the budget, rates are
demoted (p → next coarser 1/N) in order of cheapest utility loss per
budget unit freed until the configuration fits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .objective import SumUtilityObjective
from .problem import SamplingProblem
from .solution import SamplingSolution, SolverDiagnostics

__all__ = ["QuantizationResult", "quantize_rates", "quantize_solution"]

#: Coarsest supported divisor (rates below 1/MAX_DIVISOR turn off).
_MAX_DIVISOR = 10_000_000


@dataclass(frozen=True)
class QuantizationResult:
    """A deployable 1-in-N configuration and its cost."""

    solution: SamplingSolution
    divisors: np.ndarray  # per-link N (0 = monitor off)
    utility_loss: float  # continuous optimum minus quantized objective
    relative_loss: float

    @property
    def max_divisor(self) -> int:
        positive = self.divisors[self.divisors > 0]
        return int(positive.max()) if positive.size else 0


def _nearest_divisor(rate: float) -> int:
    """The integer N whose 1/N is closest to ``rate`` (0 if negligible)."""
    if rate <= 1.0 / _MAX_DIVISOR:
        return 0
    n = 1.0 / rate
    lower, upper = int(np.floor(n)), int(np.ceil(n))
    lower = max(lower, 1)
    if upper == lower:
        return lower
    return lower if abs(1.0 / lower - rate) <= abs(1.0 / upper - rate) else upper


def quantize_rates(rates: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Round each rate to the nearest ``1/N``; returns ``(rates, N)``."""
    rates = np.asarray(rates, dtype=float)
    if np.any(rates < 0) or np.any(rates > 1):
        raise ValueError("rates must lie in [0, 1]")
    divisors = np.array([_nearest_divisor(r) for r in rates], dtype=np.int64)
    quantized = np.where(divisors > 0, 1.0 / np.maximum(divisors, 1), 0.0)
    return quantized, divisors


def quantize_solution(
    problem: SamplingProblem, solution: SamplingSolution
) -> QuantizationResult:
    """Deployable 1-in-N configuration nearest to a continuous optimum.

    The quantized configuration never exceeds the capacity θ: links are
    demoted to coarser divisors (greedily, by least utility lost per
    unit of budget freed) until the constraint holds.
    """
    quantized, divisors = quantize_rates(solution.rates)
    # Quantization must respect per-link alpha caps.
    over_alpha = quantized > problem.alpha
    for i in np.flatnonzero(over_alpha):
        divisors[i] = int(np.ceil(1.0 / problem.alpha[i])) if problem.alpha[i] > 0 else 0
        quantized[i] = 1.0 / divisors[i] if divisors[i] > 0 else 0.0

    cand = np.flatnonzero(problem.candidate_mask)
    objective = SumUtilityObjective(
        problem.candidate_routing_op(), problem.utilities
    )
    loads = problem.link_loads_pps
    budget = problem.theta_rate_pps

    def used(q: np.ndarray) -> float:
        return float(q @ loads)

    # Demote until the configuration fits the budget.
    guard = 0
    while used(quantized) > budget * (1 + 1e-12) and guard < 100_000:
        guard += 1
        best_index = -1
        best_score = np.inf
        current_value = objective.value(quantized[cand])
        for i in np.flatnonzero(quantized > 0):
            trial = quantized.copy()
            new_divisor = divisors[i] + 1
            trial[i] = 1.0 / new_divisor
            freed = (quantized[i] - trial[i]) * loads[i]
            if freed <= 0:
                continue
            loss = current_value - objective.value(trial[cand])
            score = loss / freed
            if score < best_score:
                best_score = score
                best_index = i
        if best_index < 0:
            break
        divisors[best_index] += 1
        quantized[best_index] = 1.0 / divisors[best_index]

    diagnostics = SolverDiagnostics(
        method=solution.diagnostics.method + "+quantized",
        iterations=solution.diagnostics.iterations,
        constraint_releases=solution.diagnostics.constraint_releases,
        converged=solution.diagnostics.converged,
        objective_value=objective.value(quantized[cand]),
        message=f"quantized to 1-in-N after {guard} demotions",
    )
    quantized_solution = SamplingSolution(
        problem=problem, rates=quantized, diagnostics=diagnostics
    )
    loss = solution.objective_value - quantized_solution.objective_value
    return QuantizationResult(
        solution=quantized_solution,
        divisors=divisors,
        utility_loss=loss,
        relative_loss=loss / max(abs(solution.objective_value), 1e-12),
    )
