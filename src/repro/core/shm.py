"""Zero-copy problem publication over ``multiprocessing.shared_memory``.

A batch of related problems — a scenario grid, every θ of a sweep —
shares one routing matrix, one load vector, one bound vector.  The
pickle-per-task pool re-serializes all of it into every worker task;
for backbone instances that is megabytes of redundant copying per
solve.  This module publishes each distinct *array family* once into a
shared-memory segment and hands workers a :class:`ProblemHandle` — a
few hundred bytes naming the segment plus an offset table — from which
:func:`attach_problem` rebuilds a :class:`SamplingProblem` whose
arrays are read-only views straight into the segment.  Workers cache
attachments per segment, so a family is mapped once per worker
process no matter how many tasks reference it.

Two restrictions keep the rebuild exact and cheap:

* every OD pair's utility must be a
  :class:`~repro.core.utility.MeanSquaredRelativeAccuracy` (the
  paper's utility) — its single ``c`` parameter is what gets shipped;
  heterogeneous utility stacks fall back to the pickle path.
* the routing operator is shipped in its native storage (CSR triplet
  or dense array), so the worker-side operator has the same backend
  and numerics as the parent's.

Parents must keep the :class:`SharedProblemPool` open until every
worker task has finished, then :meth:`~SharedProblemPool.close` it to
unlink the segments.  Workers attach *without* registering in the
``resource_tracker`` — the parent owns the lifetime; CPython would
otherwise track each attachment as an ownership and spuriously warn
or double-unlink on worker exit (bpo-39959).
"""

from __future__ import annotations

import atexit
import threading
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..obs.logsetup import get_logger
from ..obs.metrics import METRICS
from .problem import SamplingProblem
from .utility import MeanSquaredRelativeAccuracy, UtilityFunction

logger = get_logger(__name__)

try:  # pragma: no cover - exercised implicitly on import
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

try:  # pragma: no cover
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover
    _sparse = None

__all__ = [
    "ProblemHandle",
    "SharedProblemPool",
    "attach_problem",
    "shared_memory_available",
    "live_segment_names",
    "sweep_leaked_segments",
]


def shared_memory_available() -> bool:
    """Whether the zero-copy path can engage on this interpreter."""
    return _shared_memory is not None


# ----------------------------------------------------------------------
# process-local ownership registry
# ----------------------------------------------------------------------
#
# Every segment this process *created* is registered here until its
# pool unlinks it.  A parent interrupted between publish and close
# (KeyboardInterrupt mid-batch, an exception escaping before the
# context manager runs, a worker crash unwinding the stack in an
# unexpected order) would otherwise leave named segments in /dev/shm
# forever — they are OS resources, not garbage-collected memory.  The
# atexit sweep is the last line of defence; orderly closes unregister
# first, so a clean run sweeps nothing.

_REGISTRY_LOCK = threading.Lock()
_LIVE_SEGMENTS: dict[str, object] = {}
_SWEEP_REGISTERED = False


def _register_segment(segment: object) -> None:
    global _SWEEP_REGISTERED
    with _REGISTRY_LOCK:
        _LIVE_SEGMENTS[segment.name] = segment
        if not _SWEEP_REGISTERED:
            atexit.register(sweep_leaked_segments)
            _SWEEP_REGISTERED = True


def _unregister_segment(name: str) -> None:
    with _REGISTRY_LOCK:
        _LIVE_SEGMENTS.pop(name, None)


def live_segment_names() -> list[str]:
    """Names of segments this process owns and has not yet unlinked."""
    with _REGISTRY_LOCK:
        return sorted(_LIVE_SEGMENTS)


def sweep_leaked_segments() -> int:
    """Unlink every segment still registered; returns how many leaked.

    Runs automatically at interpreter exit; callable explicitly after
    a chaos run or a recovered batch failure.  Each recovered segment
    counts ``batch.shm.leaked_recovered``.
    """
    with _REGISTRY_LOCK:
        leaked = list(_LIVE_SEGMENTS.items())
        _LIVE_SEGMENTS.clear()
    for name, segment in leaked:
        try:
            segment.close()
            segment.unlink()
        except FileNotFoundError:
            continue
        except OSError:  # pragma: no cover - platform-specific teardown
            continue
        METRICS.increment("batch.shm.leaked_recovered")
        logger.warning("recovered leaked shared-memory segment %s", name)
    return len(leaked)


@dataclass(frozen=True)
class _ArraySpec:
    """Placement of one array inside a segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ProblemHandle:
    """A picklable stand-in for a published :class:`SamplingProblem`.

    Carries everything :func:`attach_problem` needs: the segment name,
    the offset table of the family arrays, and the per-problem scalars
    (θ, interval, bound ceiling) that differ between members of one
    family (``with_theta`` copies share every array).
    ``payload_bytes`` is the family's array footprint — the bytes a
    pickle-per-task pool would have re-serialized for this task.
    """

    segment: str
    backend: str
    arrays: Mapping[str, _ArraySpec]
    shape: tuple[int, int]
    theta_packets: float
    interval_seconds: float
    alpha_ceiling: float | None
    payload_bytes: int


def _homogeneous_cs(utilities: Sequence[UtilityFunction]) -> np.ndarray | None:
    """The ``c`` vector when every utility is the paper's MSRA, else None."""
    if all(type(u) is MeanSquaredRelativeAccuracy for u in utilities):
        return np.array([u.mean_inverse_size for u in utilities])
    return None


def _family_arrays(problem: SamplingProblem, cs: np.ndarray):
    """(backend, ordered name->array dict) of everything shareable."""
    op = problem.routing_op
    arrays: dict[str, np.ndarray] = {}
    csr = op.tosparse()
    if csr is not None:
        if not csr.has_sorted_indices:
            csr = csr.sorted_indices()
        backend = "sparse"
        arrays["routing_data"] = csr.data
        arrays["routing_indices"] = csr.indices
        arrays["routing_indptr"] = csr.indptr
    else:
        backend = "dense"
        arrays["routing"] = np.ascontiguousarray(op.toarray())
    arrays["loads"] = problem.link_loads_pps
    arrays["alpha"] = problem.alpha
    arrays["monitorable"] = problem.monitorable
    arrays["mean_inverse_sizes"] = cs
    return backend, arrays


def _align(offset: int, alignment: int = 8) -> int:
    return (offset + alignment - 1) // alignment * alignment


class SharedProblemPool:
    """Parent-side publisher: one segment per distinct array family.

    Families are keyed by the *identity* of the backing objects —
    ``with_theta`` / ``clamped`` / ``restrict_monitors`` copies share
    the routing operator and vectors, so a whole sweep publishes one
    segment.  The pool holds references to the keyed objects, so
    identity cannot be recycled while it is open.

    Use as a context manager (or call :meth:`close`) — segments are
    OS resources and must be unlinked by the parent once workers are
    done.
    """

    def __init__(self) -> None:
        if _shared_memory is None:  # pragma: no cover - CPython always has it
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        self._segments: list[object] = []
        self._families: dict[tuple, tuple[str, str, dict, tuple, int]] = {}
        self._keepalive: list[object] = []

    # ------------------------------------------------------------------
    def publish(self, problem: SamplingProblem) -> ProblemHandle | None:
        """Publish ``problem``'s family (once) and return its handle.

        Returns ``None`` when the problem cannot be shared (utility
        stack is not homogeneous MSRA) — the caller should fall back
        to the pickle path for the whole batch.
        """
        cs = _homogeneous_cs(problem.utilities)
        if cs is None:
            return None
        # The routing matrix is keyed by identity (hashing megabytes per
        # publish would defeat the point; ``with_theta``/``clamped``
        # copies share the operator object).  The per-link vectors are
        # keyed by content — problem constructors copy them, so their
        # ids differ even between members of one family.
        key = (
            id(problem.routing_op),
            problem.link_loads_pps.tobytes(),
            problem.alpha.tobytes(),
            problem.monitorable.tobytes(),
            cs.tobytes(),
        )
        if key not in self._families:
            self._families[key] = self._publish_family(problem, cs)
            # Pin the routing operator so CPython cannot recycle its id
            # for as long as the pool (and thus the key) is alive.
            self._keepalive.append(problem.routing_op)
        name, backend, specs, shape, nbytes = self._families[key]
        return ProblemHandle(
            segment=name,
            backend=backend,
            arrays=specs,
            shape=shape,
            theta_packets=problem.theta_packets,
            interval_seconds=problem.interval_seconds,
            alpha_ceiling=problem.alpha_ceiling,
            payload_bytes=nbytes,
        )

    def _publish_family(self, problem: SamplingProblem, cs: np.ndarray):
        backend, arrays = _family_arrays(problem, cs)
        specs: dict[str, _ArraySpec] = {}
        offset = 0
        for name, array in arrays.items():
            offset = _align(offset)
            specs[name] = _ArraySpec(
                dtype=array.dtype.str, shape=tuple(array.shape), offset=offset
            )
            offset += array.nbytes
        segment = _shared_memory.SharedMemory(create=True, size=max(offset, 1))
        self._segments.append(segment)
        _register_segment(segment)
        for name, array in arrays.items():
            spec = specs[name]
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=segment.buf, offset=spec.offset,
            )
            view[...] = array
        METRICS.increment("batch.shm.segments")
        METRICS.increment("batch.shm.bytes_shared", offset)
        return segment.name, backend, specs, problem.routing_op.shape, offset

    # ------------------------------------------------------------------
    @property
    def bytes_shared(self) -> int:
        """Total bytes published across all families."""
        return sum(family[4] for family in self._families.values())

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Close and unlink every segment.  Idempotent."""
        while self._segments:
            segment = self._segments.pop()
            _unregister_segment(segment.name)
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._families.clear()
        self._keepalive.clear()

    def __enter__(self) -> "SharedProblemPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: Per-process attachment cache: segment name -> (SharedMemory, arrays).
#: Keeping the SharedMemory object referenced keeps the mapping alive
#: for the read-only views handed to problems.
_ATTACHED: dict[str, tuple[object, dict[str, np.ndarray]]] = {}


def _attach_untracked(name: str):
    """Attach to ``name`` without registering it in the resource tracker.

    CPython registers *attachments* as if they were ownerships
    (bpo-39959): under ``fork``/``forkserver`` the worker shares the
    parent's tracker, so a worker-side registration would later be
    cancelled out against — or double-unlink — the parent's own entry.
    The parent created the segment and is the only legitimate owner;
    workers suppress registration entirely for the duration of the
    attach call.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _skip_shared_memory(target, rtype):  # pragma: no cover - trivial
        if rtype != "shared_memory":
            original_register(target, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _attach_segment(handle: ProblemHandle) -> dict[str, np.ndarray]:
    cached = _ATTACHED.get(handle.segment)
    if cached is not None:
        METRICS.increment("batch.shm.attach_cache_hit")
        return cached[1]
    from ..resilience import faults

    faults.maybe_fire(faults.SITE_SHM_ATTACH)
    segment = _attach_untracked(handle.segment)
    arrays: dict[str, np.ndarray] = {}
    for name, spec in handle.arrays.items():
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype),
            buffer=segment.buf, offset=spec.offset,
        )
        view.setflags(write=False)
        arrays[name] = view
    _ATTACHED[handle.segment] = (segment, arrays)
    METRICS.increment("batch.shm.attach")
    return arrays


def attach_problem(handle: ProblemHandle) -> SamplingProblem:
    """Rebuild a :class:`SamplingProblem` over the published arrays.

    The returned problem's vectors are zero-copy views into the shared
    segment; the routing matrix is reassembled in the backend it was
    published from (CSR triplets are wrapped without copying).
    """
    import time as _time

    from ..obs.spans import record_span, spans_active
    from .utility import accuracy_utilities

    t_start = _time.perf_counter()
    arrays = _attach_segment(handle)
    attach_seconds = _time.perf_counter() - t_start
    METRICS.observe_histogram("batch.shm.attach_seconds", attach_seconds)
    if spans_active():
        record_span(
            "shm.attach", duration_s=attach_seconds,
            segment=handle.segment, backend=handle.backend,
        )
    if handle.backend == "sparse":
        if _sparse is None:  # pragma: no cover - parent had scipy
            raise RuntimeError("worker lacks scipy for a sparse handle")
        routing = _sparse.csr_matrix(
            (
                arrays["routing_data"],
                arrays["routing_indices"],
                arrays["routing_indptr"],
            ),
            shape=handle.shape,
            copy=False,
        )
        # Published matrices are canonical (sorted, deduplicated);
        # assert so, else downstream normalization would write into the
        # read-only shared buffers.
        routing.has_sorted_indices = True
        routing.has_canonical_format = True
    else:
        routing = arrays["routing"]
    utilities = accuracy_utilities(arrays["mean_inverse_sizes"])
    return SamplingProblem(
        routing,
        arrays["loads"],
        handle.theta_packets,
        utilities,
        alpha=arrays["alpha"],
        interval_seconds=handle.interval_seconds,
        monitorable=arrays["monitorable"],
        alpha_ceiling=handle.alpha_ceiling,
    )
