"""Top-level solve façade: one entry point, pluggable methods."""

from __future__ import annotations

from ..obs.trace import SolverTrace
from .gradient_projection import GradientProjectionOptions, solve_gradient_projection
from .objective import Objective
from .problem import SamplingProblem
from .scipy_solver import solve_scipy
from .solution import SamplingSolution

__all__ = ["solve", "SOLVER_METHODS"]

SOLVER_METHODS = ("gradient_projection", "slsqp", "trust-constr")


def solve(
    problem: SamplingProblem,
    method: str = "gradient_projection",
    objective: Objective | None = None,
    options: GradientProjectionOptions | None = None,
    trace: SolverTrace | None = None,
) -> SamplingSolution:
    """Solve the joint placement-and-rates problem.

    Parameters
    ----------
    problem:
        The optimization problem (§III).
    method:
        ``"gradient_projection"`` — the paper's algorithm (default);
        ``"slsqp"`` / ``"trust-constr"`` — SciPy reference solvers.
    objective:
        Optional objective override built on the problem's candidate
        routing columns (see
        :func:`~repro.core.gradient_projection.solve_gradient_projection`).
    options:
        Gradient-projection knobs; ignored by the SciPy methods.
    trace:
        Optional per-iteration :class:`~repro.obs.trace.SolverTrace`;
        honoured by the gradient-projection method only (the SciPy
        wrappers expose no iteration hook), which also picks up an
        ambient :func:`~repro.obs.trace.tracing` scope on its own.
    """
    if method == "gradient_projection":
        return solve_gradient_projection(
            problem, options=options, objective=objective, trace=trace
        )
    if method == "slsqp":
        return solve_scipy(problem, method="SLSQP", objective=objective)
    if method == "trust-constr":
        return solve_scipy(problem, method="trust-constr", objective=objective)
    raise ValueError(f"unknown method {method!r}; choose from {SOLVER_METHODS}")
