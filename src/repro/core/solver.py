"""Top-level solve façade: one entry point, pluggable methods."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs.trace import SolverTrace
from .gradient_projection import GradientProjectionOptions, solve_gradient_projection
from .objective import Objective
from .problem import SamplingProblem
from .scipy_solver import solve_scipy
from .solution import SamplingSolution

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .presolve import ReducedProblem

__all__ = ["solve", "SOLVER_METHODS"]

SOLVER_METHODS = ("gradient_projection", "slsqp", "trust-constr")


def solve(
    problem: SamplingProblem,
    method: str = "gradient_projection",
    objective: Objective | None = None,
    options: GradientProjectionOptions | None = None,
    trace: SolverTrace | None = None,
    presolve: "bool | ReducedProblem" = False,
) -> SamplingSolution:
    """Solve the joint placement-and-rates problem.

    Parameters
    ----------
    problem:
        The optimization problem (§III).
    method:
        ``"gradient_projection"`` — the paper's algorithm (default);
        ``"slsqp"`` / ``"trust-constr"`` — SciPy reference solvers.
    objective:
        Optional objective override built on the problem's candidate
        routing columns (see
        :func:`~repro.core.gradient_projection.solve_gradient_projection`).
        Incompatible with a reducing ``presolve``: the override is
        expressed in the original candidate space.
    options:
        Gradient-projection knobs; ignored by the SciPy methods.
    trace:
        Optional per-iteration :class:`~repro.obs.trace.SolverTrace`;
        honoured by the gradient-projection method only (the SciPy
        wrappers expose no iteration hook), which also picks up an
        ambient :func:`~repro.obs.trace.tracing` scope on its own.
    presolve:
        ``True`` runs :func:`~repro.core.presolve.presolve` first,
        solves the reduced problem and lifts the solution back (exact:
        identical objective).  Callers re-solving one topology many
        times can pass a prebuilt
        :class:`~repro.core.presolve.ReducedProblem` to amortize the
        reduction; its ``original`` must be ``problem``.  When nothing
        reduces the solve is bitwise-identical to ``presolve=False``.
    """
    if presolve:
        reduced = _resolve_reduction(problem, presolve)
        forced = reduced.forced_solution()
        if forced is not None:
            return forced
        if not reduced.identity:
            if objective is not None:
                raise ValueError(
                    "objective override is incompatible with a reducing "
                    "presolve; pass presolve=False or drop the override"
                )
            inner = solve(
                reduced.problem, method=method, options=options, trace=trace
            )
            kkt_tolerance = (
                options.kkt_tolerance
                if options is not None and method == "gradient_projection"
                else GradientProjectionOptions().kkt_tolerance
            )
            return reduced.lift(inner, kkt_tolerance=kkt_tolerance)
    if method == "gradient_projection":
        return solve_gradient_projection(
            problem, options=options, objective=objective, trace=trace
        )
    if method == "slsqp":
        return solve_scipy(problem, method="SLSQP", objective=objective)
    if method == "trust-constr":
        return solve_scipy(problem, method="trust-constr", objective=objective)
    raise ValueError(f"unknown method {method!r}; choose from {SOLVER_METHODS}")


def _resolve_reduction(
    problem: SamplingProblem, presolve: "bool | ReducedProblem"
) -> "ReducedProblem":
    """Normalize the ``presolve`` argument into a :class:`ReducedProblem`."""
    from .presolve import ReducedProblem, presolve as run_presolve

    if presolve is True:
        return run_presolve(problem)
    if isinstance(presolve, ReducedProblem):
        if presolve.original is not problem:
            raise ValueError(
                "prebuilt ReducedProblem belongs to a different problem"
            )
        return presolve
    raise TypeError("presolve must be a bool or a ReducedProblem")
