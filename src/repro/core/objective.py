"""Objective functions over the sampling-rate vector.

The paper maximizes the *sum* of per-OD utilities (eq. 2) and discusses
max-min of utilities as an alternative (§III); the max-min variant is
non-differentiable, so we ship it as a smooth soft-min, preserving the
concavity and C² regularity the solver needs.

Objectives expose exactly what the gradient-projection solver consumes:
value, gradient, and the second *directional* derivative along a search
direction (for the Newton line search).  All of them operate on a
vector ``x`` of sampling rates for an arbitrary column subset of the
routing matrix (the solver restricts to candidate links).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .utility import MeanSquaredRelativeAccuracy, UtilityFunction

__all__ = ["Objective", "SumUtilityObjective", "SoftMinUtilityObjective"]


class _VectorizedAccuracy:
    """Batch evaluator for a homogeneous accuracy-utility family.

    When every OD pair uses :class:`MeanSquaredRelativeAccuracy` (the
    paper's setting), the per-OD Python loop in ``_per_od`` dominates
    solver time; this evaluator computes values/derivatives for all OD
    pairs in single numpy expressions instead.
    """

    def __init__(self, utilities: Sequence[MeanSquaredRelativeAccuracy]):
        self.c = np.array([u.mean_inverse_size for u in utilities])
        self.x0 = 3.0 * self.c / (1.0 + self.c)
        self.a0 = 2.0 * (1.0 + self.c) / 3.0
        self.d1 = self.c / self.x0**2
        self.d2 = -2.0 * self.c / self.x0**3

    def value(self, rho: np.ndarray) -> np.ndarray:
        rho = np.maximum(rho, 0.0)
        safe = np.maximum(rho, self.x0)
        hyperbolic = 1.0 + self.c - self.c / safe
        quadratic = (
            self.a0 + (rho - self.x0) * self.d1
            + 0.5 * (rho - self.x0) ** 2 * self.d2
        )
        return np.where(rho >= self.x0, hyperbolic, quadratic)

    def derivative(self, rho: np.ndarray) -> np.ndarray:
        rho = np.maximum(rho, 0.0)
        safe = np.maximum(rho, self.x0)
        hyperbolic = self.c / safe**2
        quadratic = self.d1 + (rho - self.x0) * self.d2
        return np.where(rho >= self.x0, hyperbolic, quadratic)

    def second_derivative(self, rho: np.ndarray) -> np.ndarray:
        rho = np.maximum(rho, 0.0)
        safe = np.maximum(rho, self.x0)
        hyperbolic = -2.0 * self.c / safe**3
        return np.where(rho >= self.x0, hyperbolic, self.d2)


class Objective:
    """Concave C² objective ``f(x)`` with ``x`` = link sampling rates."""

    def value(self, x: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def directional_curvature(self, x: np.ndarray, s: np.ndarray) -> float:
        """``d²/dt² f(x + t s)`` at ``t = 0`` (non-positive)."""
        raise NotImplementedError


class _RoutedObjective(Objective):
    """Shared plumbing: ``ρ = R x`` plus per-OD utilities."""

    def __init__(self, routing: np.ndarray, utilities: Sequence[UtilityFunction]):
        routing = np.asarray(routing, dtype=float)
        if routing.ndim != 2:
            raise ValueError("routing must be 2-D")
        if routing.shape[0] != len(utilities):
            raise ValueError(
                f"{len(utilities)} utilities for {routing.shape[0]} OD rows"
            )
        self._routing = routing
        self._utilities = list(utilities)
        # Fast path: the paper's homogeneous accuracy-utility family
        # evaluates vectorized; mixed families fall back to the loop.
        if all(
            type(u) is MeanSquaredRelativeAccuracy for u in self._utilities
        ):
            self._vectorized = _VectorizedAccuracy(self._utilities)
        else:
            self._vectorized = None

    @property
    def routing(self) -> np.ndarray:
        return self._routing

    @property
    def utilities(self) -> list[UtilityFunction]:
        return list(self._utilities)

    def rho(self, x: np.ndarray) -> np.ndarray:
        """Linear effective rates ``R x``."""
        return self._routing @ np.asarray(x, dtype=float)

    def _per_od(self, method: str, rho: np.ndarray) -> np.ndarray:
        if self._vectorized is not None:
            return getattr(self._vectorized, method)(rho)
        return np.array(
            [getattr(u, method)(r) for u, r in zip(self._utilities, rho)]
        )


class SumUtilityObjective(_RoutedObjective):
    """The paper's objective: ``f(x) = Σ_k w_k · M_k(ρ_k(x))`` (eq. 2).

    ``weights`` (default all-ones, the paper's plain sum) let an
    operator value OD pairs unequally — e.g. weighting a peering-link
    customer above best-effort transit.  Positive weights preserve
    concavity, so the same solver machinery applies unchanged.
    """

    def __init__(
        self,
        routing: np.ndarray,
        utilities: Sequence[UtilityFunction],
        weights: np.ndarray | Sequence[float] | None = None,
    ):
        super().__init__(routing, utilities)
        if weights is None:
            self._weights = np.ones(len(utilities))
        else:
            self._weights = np.asarray(weights, dtype=float)
            if self._weights.shape != (len(utilities),):
                raise ValueError("weights do not match OD count")
            if np.any(self._weights <= 0):
                raise ValueError("weights must be positive")

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    def value(self, x: np.ndarray) -> float:
        return float(self._weights @ self._per_od("value", self.rho(x)))

    def utilities_at(self, x: np.ndarray) -> np.ndarray:
        """Per-OD (unweighted) utility values ``M_k(ρ_k)``."""
        return self._per_od("value", self.rho(x))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """``∇f = Rᵀ (w ∘ M'(ρ))``."""
        slopes = self._per_od("derivative", self.rho(x))
        return self._routing.T @ (self._weights * slopes)

    def directional_curvature(self, x: np.ndarray, s: np.ndarray) -> float:
        """``Σ_k w_k (R s)_k² · M_k''(ρ_k)`` — separable chain rule."""
        d = self._routing @ np.asarray(s, dtype=float)
        curvatures = self._per_od("second_derivative", self.rho(x))
        return float((self._weights * d**2) @ curvatures)


class SoftMinUtilityObjective(_RoutedObjective):
    """Smooth max-min objective: ``f = -T log Σ_k exp(-M_k(ρ_k)/T)``.

    As the temperature ``T → 0`` this approaches ``min_k M_k`` (§III's
    alternative objective) while staying concave and C², so the same
    solver applies — exactly the smoothing remedy the paper hints at
    when noting the plain minimum "is not a differentiable function".
    """

    def __init__(
        self,
        routing: np.ndarray,
        utilities: Sequence[UtilityFunction],
        temperature: float = 0.01,
    ):
        super().__init__(routing, utilities)
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = float(temperature)

    def _weights(self, values: np.ndarray) -> np.ndarray:
        """Softmax weights of ``exp(-M_k/T)``, computed stably."""
        z = -values / self.temperature
        z -= z.max()
        w = np.exp(z)
        return w / w.sum()

    def value(self, x: np.ndarray) -> float:
        values = self._per_od("value", self.rho(x))
        z = -values / self.temperature
        zmax = z.max()
        return float(-self.temperature * (zmax + np.log(np.exp(z - zmax).sum())))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        rho = self.rho(x)
        values = self._per_od("value", rho)
        slopes = self._per_od("derivative", rho)
        weights = self._weights(values)
        return self._routing.T @ (weights * slopes)

    def directional_curvature(self, x: np.ndarray, s: np.ndarray) -> float:
        rho = self.rho(x)
        d = self._routing @ np.asarray(s, dtype=float)
        values = self._per_od("value", rho)
        slopes = self._per_od("derivative", rho)
        curvatures = self._per_od("second_derivative", rho)
        weights = self._weights(values)
        du = d * slopes  # d/dt of each M_k along s
        mean_du = float(weights @ du)
        # d²f/dt² = Σ w_k ü_k − (1/T)(Σ w_k u̇_k² − (Σ w_k u̇_k)²)
        return float(
            weights @ (d**2 * curvatures)
            - (weights @ du**2 - mean_du**2) / self.temperature
        )
