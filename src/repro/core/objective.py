"""Objective functions over the sampling-rate vector.

The paper maximizes the *sum* of per-OD utilities (eq. 2) and discusses
max-min of utilities as an alternative (§III); the max-min variant is
non-differentiable, so we ship it as a smooth soft-min, preserving the
concavity and C² regularity the solver needs.

Objectives expose exactly what the gradient-projection solver consumes:
value, gradient, the second *directional* derivative along a search
direction (for the Newton line search), and :meth:`Objective.along_ray`
— a one-dimensional restriction ``φ(t) = f(x + t s)`` whose routed
implementations precompute ``ρ₀ = R x`` and ``δ = R s`` once so every
line-search trial costs ``O(K)`` instead of a fresh matvec.  All of
them operate on a vector ``x`` of sampling rates for an arbitrary
column subset of the routing matrix (the solver restricts to candidate
links); the routing argument may be a dense array, a SciPy sparse
matrix, or a :class:`~repro.core.routing_op.RoutingOperator`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..obs.metrics import METRICS
from .routing_op import RoutingOperator
from .utility import MeanSquaredRelativeAccuracy, UtilityFunction

__all__ = [
    "Objective",
    "ObjectiveRay",
    "SumUtilityObjective",
    "SoftMinUtilityObjective",
]


class _VectorizedAccuracy:
    """Batch evaluator for a homogeneous accuracy-utility family.

    When every OD pair uses :class:`MeanSquaredRelativeAccuracy` (the
    paper's setting), the per-OD Python loop in ``_per_od`` dominates
    solver time; this evaluator computes values/derivatives for all OD
    pairs in single numpy expressions instead.

    Every method accepts ``rho`` of shape ``(K,)`` (one configuration)
    or ``(K, m)`` (a stack of ``m`` configurations, one per column);
    the per-OD parameters broadcast along the trailing axis.
    """

    def __init__(self, utilities: Sequence[MeanSquaredRelativeAccuracy]):
        self.c = np.array([u.mean_inverse_size for u in utilities])
        self.x0 = 3.0 * self.c / (1.0 + self.c)
        self.a0 = 2.0 * (1.0 + self.c) / 3.0
        self.d1 = self.c / self.x0**2
        self.d2 = -2.0 * self.c / self.x0**3

    def _params(self, rho: np.ndarray):
        if rho.ndim == 2:
            return (
                self.c[:, None], self.x0[:, None], self.a0[:, None],
                self.d1[:, None], self.d2[:, None],
            )
        return self.c, self.x0, self.a0, self.d1, self.d2

    def value(self, rho: np.ndarray) -> np.ndarray:
        rho = np.maximum(rho, 0.0)
        c, x0, a0, d1, d2 = self._params(rho)
        safe = np.maximum(rho, x0)
        hyperbolic = 1.0 + c - c / safe
        quadratic = a0 + (rho - x0) * d1 + 0.5 * (rho - x0) ** 2 * d2
        return np.where(rho >= x0, hyperbolic, quadratic)

    def derivative(self, rho: np.ndarray) -> np.ndarray:
        rho = np.maximum(rho, 0.0)
        c, x0, _, d1, d2 = self._params(rho)
        safe = np.maximum(rho, x0)
        hyperbolic = c / safe**2
        quadratic = d1 + (rho - x0) * d2
        return np.where(rho >= x0, hyperbolic, quadratic)

    def second_derivative(self, rho: np.ndarray) -> np.ndarray:
        rho = np.maximum(rho, 0.0)
        c, x0, _, _, d2 = self._params(rho)
        safe = np.maximum(rho, x0)
        hyperbolic = -2.0 * c / safe**3
        return np.where(rho >= x0, hyperbolic, d2)


class ObjectiveRay:
    """The restriction ``φ(t) = f(x + t s)`` of an objective to a ray.

    Line searches consume exactly this surface: ``value`` (golden
    section), ``slope`` ``φ'(t)`` and ``curvature`` ``φ''(t)``
    (Newton).
    """

    def value(self, t: float) -> float:
        raise NotImplementedError

    def slope(self, t: float) -> float:
        raise NotImplementedError

    def curvature(self, t: float) -> float:
        raise NotImplementedError


class _GenericRay(ObjectiveRay):
    """Fallback ray: full objective evaluations at every trial point.

    This is the pre-optimization inner loop — each trial pays the
    complete ``R (x + t s)`` matvec — kept as the correctness reference
    and as the baseline the hot-path benchmark measures against.
    """

    def __init__(self, objective: "Objective", x: np.ndarray, s: np.ndarray):
        self._objective = objective
        self._x = x
        self._s = s

    def value(self, t: float) -> float:
        return self._objective.value(self._x + t * self._s)

    def slope(self, t: float) -> float:
        return float(self._objective.gradient(self._x + t * self._s) @ self._s)

    def curvature(self, t: float) -> float:
        return self._objective.directional_curvature(
            self._x + t * self._s, self._s
        )


class Objective:
    """Concave C² objective ``f(x)`` with ``x`` = link sampling rates."""

    def value(self, x: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def directional_curvature(self, x: np.ndarray, s: np.ndarray) -> float:
        """``d²/dt² f(x + t s)`` at ``t = 0`` (non-positive)."""
        raise NotImplementedError

    def along_ray(self, x: np.ndarray, s: np.ndarray) -> ObjectiveRay:
        """Restriction of ``f`` to ``t ↦ x + t s``.

        Subclasses built on a routing operator override this with an
        incremental evaluator; the default recomputes from scratch.
        """
        return _GenericRay(
            self, np.asarray(x, dtype=float), np.asarray(s, dtype=float)
        )


class _RoutedObjective(Objective):
    """Shared plumbing: ``ρ = R x`` plus per-OD utilities."""

    def __init__(self, routing, utilities: Sequence[UtilityFunction]):
        operator = RoutingOperator.from_matrix(routing)
        if operator.shape[0] != len(utilities):
            raise ValueError(
                f"{len(utilities)} utilities for {operator.shape[0]} OD rows"
            )
        self._operator = operator
        self._dense_routing: np.ndarray | None = None
        self._utilities = list(utilities)
        # One-entry ρ memo: value/gradient/utilities_at at the same
        # point share a single ``R x`` (the compare is O(n), the matvec
        # O(nnz)); keyed by content so in-place mutation of the
        # caller's x simply misses.
        self._rho_point: np.ndarray | None = None
        self._rho_value: np.ndarray | None = None
        # Fast path: the paper's homogeneous accuracy-utility family
        # evaluates vectorized; mixed families fall back to the loop.
        if all(
            type(u) is MeanSquaredRelativeAccuracy for u in self._utilities
        ):
            self._vectorized = _VectorizedAccuracy(self._utilities)
        else:
            self._vectorized = None

    @property
    def routing(self) -> np.ndarray:
        """Dense ``K x n`` routing array (materialized on demand)."""
        if self._dense_routing is None:
            dense = self._operator.toarray()
            dense.setflags(write=False)
            self._dense_routing = dense
        return self._dense_routing

    @property
    def routing_operator(self) -> RoutingOperator:
        return self._operator

    @property
    def utilities(self) -> list[UtilityFunction]:
        return list(self._utilities)

    def rho(self, x: np.ndarray) -> np.ndarray:
        """Linear effective rates ``R x`` (memoized for the last x)."""
        x = np.asarray(x, dtype=float)
        if (
            self._rho_point is not None
            and x.shape == self._rho_point.shape
            and np.array_equal(x, self._rho_point)
        ):
            METRICS.increment("objective.rho.memo_hit")
            return self._rho_value
        METRICS.increment("objective.rho.memo_miss")
        rho = self._operator.matvec(x)
        rho.setflags(write=False)
        self._rho_point = x.copy()
        self._rho_value = rho
        return rho

    def _per_od(self, method: str, rho: np.ndarray) -> np.ndarray:
        if self._vectorized is not None:
            return getattr(self._vectorized, method)(rho)
        out = np.empty(len(self._utilities))
        for k, utility in enumerate(self._utilities):
            out[k] = getattr(utility, method)(rho[k])
        return out

    def _per_od_stack(self, method: str, rho: np.ndarray) -> np.ndarray:
        """Per-OD utility quantities for a ``(K, m)`` stack of ρ columns."""
        if self._vectorized is not None:
            return getattr(self._vectorized, method)(rho)
        out = np.empty(rho.shape)
        for j in range(rho.shape[1]):
            out[:, j] = self._per_od(method, rho[:, j])
        return out

    def rho_stack(self, X: np.ndarray) -> np.ndarray:
        """Effective rates ``R X`` for a stack of rate vectors (n, m).

        One matmat instead of ``m`` matvecs: the batched counterpart of
        :meth:`rho`, used by sweeps, candidate ranking and family KKT
        verification.  Not memoized — stacks are one-shot evaluations.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("rho_stack expects a 2-D (links, m) stack")
        return self._operator.matmat(X)


class _RoutedRay(ObjectiveRay):
    """Incremental ray over ``ρ(t) = ρ₀ + t δ``.

    ``ρ₀ = R x`` and ``δ = R s`` are computed once at construction;
    every trial point then reduces to an ``O(K)`` axpy plus the per-OD
    utility formulas — the full matvec never recurs.  The ρ vector of
    the most recent ``t`` is kept so Newton's slope+curvature pair at
    the same trial shares one evaluation.
    """

    def __init__(self, objective: "_RoutedObjective", x: np.ndarray, s: np.ndarray):
        self._objective = objective
        self._rho0 = objective.rho(x)
        self._delta = objective.routing_operator.matvec(
            np.asarray(s, dtype=float)
        )
        self._last_t: float | None = None
        self._last_rho: np.ndarray | None = None

    @property
    def delta(self) -> np.ndarray:
        """``δ = R s`` — per-OD rate change per unit step."""
        return self._delta

    def rho_at(self, t: float) -> np.ndarray:
        if t != self._last_t:
            self._last_rho = self._rho0 + t * self._delta
            self._last_t = t
        return self._last_rho


class _SumUtilityRay(_RoutedRay):
    def value(self, t: float) -> float:
        objective = self._objective
        values = objective._per_od("value", self.rho_at(t))
        return float(objective._weights @ values)

    def slope(self, t: float) -> float:
        objective = self._objective
        slopes = objective._per_od("derivative", self.rho_at(t))
        return float((objective._weights * slopes) @ self._delta)

    def curvature(self, t: float) -> float:
        objective = self._objective
        curvatures = objective._per_od("second_derivative", self.rho_at(t))
        return float((objective._weights * self._delta**2) @ curvatures)


class SumUtilityObjective(_RoutedObjective):
    """The paper's objective: ``f(x) = Σ_k w_k · M_k(ρ_k(x))`` (eq. 2).

    ``weights`` (default all-ones, the paper's plain sum) let an
    operator value OD pairs unequally — e.g. weighting a peering-link
    customer above best-effort transit.  Positive weights preserve
    concavity, so the same solver machinery applies unchanged.
    """

    def __init__(
        self,
        routing,
        utilities: Sequence[UtilityFunction],
        weights: np.ndarray | Sequence[float] | None = None,
    ):
        super().__init__(routing, utilities)
        if weights is None:
            self._weights = np.ones(len(utilities))
        else:
            self._weights = np.asarray(weights, dtype=float)
            if self._weights.shape != (len(utilities),):
                raise ValueError("weights do not match OD count")
            if np.any(self._weights <= 0):
                raise ValueError("weights must be positive")

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    def value(self, x: np.ndarray) -> float:
        return float(self._weights @ self._per_od("value", self.rho(x)))

    def utilities_at(self, x: np.ndarray) -> np.ndarray:
        """Per-OD (unweighted) utility values ``M_k(ρ_k)``.

        Shares the ρ memo with :meth:`value` and :meth:`gradient`, so
        reporting utilities right after a solve costs no extra matvec.
        """
        return self._per_od("value", self.rho(x))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        """``∇f = Rᵀ (w ∘ M'(ρ))``."""
        slopes = self._per_od("derivative", self.rho(x))
        return self._operator.rmatvec(self._weights * slopes)

    def directional_curvature(self, x: np.ndarray, s: np.ndarray) -> float:
        """``Σ_k w_k (R s)_k² · M_k''(ρ_k)`` — separable chain rule."""
        d = self._operator.matvec(np.asarray(s, dtype=float))
        curvatures = self._per_od("second_derivative", self.rho(x))
        return float((self._weights * d**2) @ curvatures)

    def curvature_weights(self, x: np.ndarray) -> np.ndarray:
        """Per-OD Hessian weights: ``∇²f = Rᵀ diag(w ∘ M''(ρ)) R``.

        The separable structure collapses the full Hessian to one
        weight per OD pair (non-positive, since each ``M_k`` is
        concave); the solver's reduced-Newton warm path assembles its
        free-subspace block from these.
        """
        return self._weights * self._per_od("second_derivative", self.rho(x))

    def along_ray(self, x: np.ndarray, s: np.ndarray) -> ObjectiveRay:
        return _SumUtilityRay(self, np.asarray(x, dtype=float), s)

    # -- stacked evaluation (families of configurations) ----------------
    def value_stack(self, X: np.ndarray) -> np.ndarray:
        """Objective values of ``m`` rate vectors stacked as columns.

        ``X`` has shape ``(n, m)``; the result has shape ``(m,)``.  One
        ``R X`` matmat replaces ``m`` matvecs, and the per-OD utility
        formulas evaluate on the whole ``(K, m)`` ρ block at once.
        """
        values = self._per_od_stack("value", self.rho_stack(X))
        return self._weights @ values

    def utilities_stack(self, X: np.ndarray) -> np.ndarray:
        """Per-OD (unweighted) utilities of a stack: shape ``(K, m)``."""
        return self._per_od_stack("value", self.rho_stack(X))

    def gradient_stack(self, X: np.ndarray) -> np.ndarray:
        """Gradients ``∇f`` of ``m`` rate vectors: shape ``(n, m)``.

        ``Rᵀ (w ∘ M'(ρ))`` with the weighting broadcast across columns
        — a single rmatmat assembles every gradient of the family.
        """
        slopes = self._per_od_stack("derivative", self.rho_stack(X))
        return self._operator.rmatmat(self._weights[:, None] * slopes)


class _SoftMinRay(_RoutedRay):
    def value(self, t: float) -> float:
        objective = self._objective
        values = objective._per_od("value", self.rho_at(t))
        return objective._value_from_utilities(values)

    def slope(self, t: float) -> float:
        objective = self._objective
        rho = self.rho_at(t)
        values = objective._per_od("value", rho)
        slopes = objective._per_od("derivative", rho)
        weights = objective._weights(values)
        return float(weights @ (slopes * self._delta))

    def curvature(self, t: float) -> float:
        objective = self._objective
        rho = self.rho_at(t)
        values = objective._per_od("value", rho)
        slopes = objective._per_od("derivative", rho)
        curvatures = objective._per_od("second_derivative", rho)
        return objective._curvature_terms(
            values, slopes, curvatures, self._delta
        )


class SoftMinUtilityObjective(_RoutedObjective):
    """Smooth max-min objective: ``f = -T log Σ_k exp(-M_k(ρ_k)/T)``.

    As the temperature ``T → 0`` this approaches ``min_k M_k`` (§III's
    alternative objective) while staying concave and C², so the same
    solver applies — exactly the smoothing remedy the paper hints at
    when noting the plain minimum "is not a differentiable function".
    """

    def __init__(
        self,
        routing,
        utilities: Sequence[UtilityFunction],
        temperature: float = 0.01,
    ):
        super().__init__(routing, utilities)
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = float(temperature)

    def _weights(self, values: np.ndarray) -> np.ndarray:
        """Softmax weights of ``exp(-M_k/T)``, computed stably."""
        z = -values / self.temperature
        z -= z.max()
        w = np.exp(z)
        return w / w.sum()

    def _value_from_utilities(self, values: np.ndarray) -> float:
        z = -values / self.temperature
        zmax = z.max()
        return float(-self.temperature * (zmax + np.log(np.exp(z - zmax).sum())))

    def _curvature_terms(
        self,
        values: np.ndarray,
        slopes: np.ndarray,
        curvatures: np.ndarray,
        d: np.ndarray,
    ) -> float:
        weights = self._weights(values)
        du = d * slopes  # d/dt of each M_k along the ray
        mean_du = float(weights @ du)
        # d²f/dt² = Σ w_k ü_k − (1/T)(Σ w_k u̇_k² − (Σ w_k u̇_k)²)
        return float(
            weights @ (d**2 * curvatures)
            - (weights @ du**2 - mean_du**2) / self.temperature
        )

    def value(self, x: np.ndarray) -> float:
        return self._value_from_utilities(self._per_od("value", self.rho(x)))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        rho = self.rho(x)
        values = self._per_od("value", rho)
        slopes = self._per_od("derivative", rho)
        weights = self._weights(values)
        return self._operator.rmatvec(weights * slopes)

    def directional_curvature(self, x: np.ndarray, s: np.ndarray) -> float:
        rho = self.rho(x)
        d = self._operator.matvec(np.asarray(s, dtype=float))
        values = self._per_od("value", rho)
        slopes = self._per_od("derivative", rho)
        curvatures = self._per_od("second_derivative", rho)
        return self._curvature_terms(values, slopes, curvatures, d)

    def along_ray(self, x: np.ndarray, s: np.ndarray) -> ObjectiveRay:
        return _SoftMinRay(self, np.asarray(x, dtype=float), s)
