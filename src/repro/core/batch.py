"""Families of solves: warm-started chains, θ sweeps, parallel batches.

The paper's evaluation repeatedly solves *families* of closely related
problems — the capacity sweep behind Figure 2, per-interval
re-optimization under traffic change (§I's motivation), failure
scenarios.  Two structural facts make families much cheaper than
independent solves:

* adjacent instances have nearby optima, so chaining each solution
  into the next solve as a warm start (projected onto the new feasible
  set) collapses the iteration count;
* instances *across* families are independent, so they fan out over a
  process pool.

:class:`WarmStartChain` is the stateful primitive (the adaptive
controller holds one across control intervals); :func:`solve_chain`
and :func:`solve_theta_sweep` run a whole family through a chain; and
:func:`solve_batch` distributes independent problems over
``concurrent.futures`` workers.

Warm starts are guarded by a *structural fingerprint*: the chain
reuses the previous optimum only when the problem's dimensions,
candidate set, routing content and bounds all match the instance that
produced it (θ, the interval length and load *levels* are exempt —
capacity sweeps and per-interval load drift are the whole point of
chaining).  A mismatch — a failure scenario on an equal-sized
topology, a re-routed OD pair — cold-starts silently and counts
``batch.warm_start.stale``.

Pools ship problems zero-copy where possible: the routing matrix,
loads and bounds of each distinct problem family are published once
via :mod:`repro.core.shm` and workers attach read-only, instead of
re-unpickling megabytes per task.  Heterogeneous utility stacks (or a
missing ``multiprocessing.shared_memory``) fall back transparently to
the pickle path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from ..obs.logsetup import get_logger
from ..obs.manifest import fingerprint_problem
from ..obs.metrics import METRICS, diff_snapshots
from ..obs.spans import (
    active_span_recorder,
    current_span_context,
    record_span,
    remote_span_context,
    span,
)
from ..obs.trace import SolverTrace
from .gradient_projection import (
    GradientProjectionOptions,
    solve_gradient_projection,
)
from .kkt import check_kkt_family
from .presolve import ReducedProblem
from .problem import SamplingProblem
from .solution import SamplingSolution
from .solver import solve

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.supervisor import SupervisorPolicy

logger = get_logger(__name__)

__all__ = [
    "WarmStartChain",
    "solve_chain",
    "solve_theta_sweep",
    "solve_batch",
]

#: Fingerprint keys a warm start is allowed to differ on: the capacity
#: θ and the interval length are exactly what sweeps vary.
_NON_STRUCTURAL_KEYS = frozenset({"theta_packets", "interval_seconds"})

#: Pool batches at or below this size run inline: two solves never
#: amortize worker spawn + import cost.
_INLINE_BATCH_MAX = 2

#: Environment variable capping the *default* worker count of
#: :func:`solve_batch` (and everything fanning out through it — the
#: θ-sweep pool, the decomposition solver).  CI runners and shared
#: machines set it so a batch never oversubscribes the host; an
#: explicit ``processes=`` argument always wins.
MAX_PROCESSES_ENV = "REPRO_MAX_PROCESSES"


def _default_processes(num_problems: int) -> int:
    """``min(cpu, len)`` capped by ``$REPRO_MAX_PROCESSES`` when set.

    Unparseable or non-positive override values are ignored (the
    batch layer must never crash over a stray environment variable);
    the ignored value is counted in ``batch.env_cap.invalid``.
    """
    processes = min(os.cpu_count() or 1, max(num_problems, 1))
    raw = os.environ.get(MAX_PROCESSES_ENV)
    if raw is None:
        return processes
    try:
        cap = int(raw)
    except ValueError:
        cap = 0
    if cap < 1:
        METRICS.increment("batch.env_cap.invalid")
        return processes
    if cap < processes:
        METRICS.increment("batch.env_cap.applied")
    return min(processes, cap)


def _structural_fingerprint(problem: SamplingProblem) -> tuple:
    """Hashable identity of everything a warm start must agree on.

    Builds on :func:`repro.obs.manifest.fingerprint_problem` (sizes,
    candidate count, α range, routing nnz/backend) and adds content
    digests of the routing storage, bounds, monitorable mask and the
    loads' zero pattern — nnz alone cannot distinguish two
    equal-density failure scenarios.  Load *levels* are deliberately
    left out: a warm start is only an initial point (the solver
    projects it onto the new feasible set), and per-interval load
    drift — diurnal scaling, the adaptive controller's SNMP readouts —
    is exactly when chaining pays.  A load crossing zero changes the
    candidate set, which the zero-pattern digest does catch.
    """
    digest = hashlib.blake2b(digest_size=16)
    csr = problem.routing_op.tosparse()
    if csr is not None:
        digest.update(csr.indptr.tobytes())
        digest.update(csr.indices.tobytes())
        digest.update(csr.data.tobytes())
    else:
        digest.update(np.ascontiguousarray(problem.routing_op.toarray()).tobytes())
    digest.update((problem.link_loads_pps > 0).tobytes())
    digest.update(problem.alpha.tobytes())
    digest.update(problem.monitorable.tobytes())
    fingerprint = fingerprint_problem(problem, content_digest=digest.hexdigest())
    return tuple(
        sorted(
            (key, value)
            for key, value in fingerprint.items()
            if key not in _NON_STRUCTURAL_KEYS
        )
    )


class WarmStartChain:
    """Solve successive problems, warm-starting each from the last optimum.

    Warm starts apply only to the gradient-projection method (the SciPy
    reference solvers take no starting point through the façade) and
    only while the structural fingerprint of the incoming problem
    matches the one that produced the previous optimum — θ may change
    (that is what sweeps do), but a changed routing matrix, load
    vector, bound vector or monitorable mask cold-starts silently.
    Stale fallbacks count ``batch.warm_start.stale`` in
    :data:`~repro.obs.metrics.METRICS`.

    With ``presolve`` enabled each member is reduced first (see
    :mod:`repro.core.presolve`) and the warm start is carried across
    the reduction boundary by group-summing the previous full-space
    optimum; solutions are lifted back, so callers always see
    full-space optima.

    With a ``policy``
    (:class:`~repro.resilience.supervisor.SupervisorPolicy`) each
    member solve runs supervised: per-attempt timeout, bounded
    retries, then the policy's fallback chain — the chain keeps
    advancing on a degraded answer instead of crashing the family.
    """

    def __init__(
        self,
        method: str = "gradient_projection",
        options: GradientProjectionOptions | None = None,
        warm_start: bool = True,
        trace: SolverTrace | None = None,
        presolve: bool = False,
        policy: "SupervisorPolicy | None" = None,
    ) -> None:
        self._method = method
        self._options = options
        self._warm_start = warm_start
        self._trace = trace
        self._presolve = presolve
        self._policy = policy
        self._previous_rates: np.ndarray | None = None
        self._previous_fingerprint: tuple | None = None
        self._last_solve_warm = False

    @property
    def previous_rates(self) -> np.ndarray | None:
        """The last optimum's full-length rate vector (or None)."""
        return self._previous_rates

    @property
    def last_solve_warm(self) -> bool:
        """Whether the most recent :meth:`solve` passed a warm start.

        The streaming controller reports per-interval warm/cold status
        from this; it reflects the *attempt* (set before the member
        solve runs), so a failed member still reads back truthfully.
        """
        return self._last_solve_warm

    def reset(self) -> None:
        """Forget the chain state; the next solve starts cold."""
        self._previous_rates = None
        self._previous_fingerprint = None
        self._last_solve_warm = False

    def seed(self, problem: SamplingProblem, rates: np.ndarray) -> None:
        """Prime the chain as if ``problem`` had just solved to ``rates``.

        Checkpoint resume uses this: restoring the completed prefix
        and seeding the chain from its last optimum makes the resumed
        sweep's remaining members solve from exactly the warm starts
        the uninterrupted sweep would have used.
        """
        self._previous_rates = np.asarray(rates, dtype=float)
        if self._warm_start and self._method == "gradient_projection":
            self._previous_fingerprint = _structural_fingerprint(problem)

    def solve(
        self,
        problem: SamplingProblem,
        options: GradientProjectionOptions | None = None,
    ) -> SamplingSolution:
        """Solve one member, warm-started from the previous optimum.

        ``options`` overrides the chain's construction-time options
        for this call only — the serve daemon uses this to thread a
        per-request deadline into ``wall_clock_limit_s`` without
        rebuilding the chain.
        """
        warm = None
        fingerprint: tuple | None = None
        if self._warm_start and self._method == "gradient_projection":
            fingerprint = _structural_fingerprint(problem)
            if self._previous_rates is not None:
                if fingerprint == self._previous_fingerprint:
                    warm = self._previous_rates
                else:
                    METRICS.increment("batch.warm_start.stale")
        self._last_solve_warm = warm is not None
        METRICS.increment(
            "batch.warm_start.hit" if warm is not None else "batch.warm_start.miss"
        )
        with span("batch.chain.solve", warm=warm is not None,
                  supervised=self._policy is not None):
            if self._policy is None:
                solution = self._solve_one(problem, warm, options)
            else:
                solution = self._solve_supervised(problem, warm, options)
        # Commit (rates, fingerprint) as a pair, only after success: a
        # member that raises — the adaptive controller's hold-on-failure
        # path — must leave the chain describing the last *good* optimum.
        # Committing the fingerprint before the solve let a later
        # structurally-matching problem warm-start from rates produced
        # under a different structure.
        self._previous_rates = solution.rates
        if fingerprint is not None:
            self._previous_fingerprint = fingerprint
        return solution

    def _solve_supervised(
        self,
        problem: SamplingProblem,
        warm: np.ndarray | None,
        options: GradientProjectionOptions | None = None,
    ) -> SamplingSolution:
        """One member through the supervisor: primary (warm) + fallbacks."""
        from ..resilience.supervisor import (
            fallback_stages,
            supervise_stages,
            with_cooperative_limit,
        )

        options = options if options is not None else self._options
        if self._method == "gradient_projection":
            options = with_cooperative_limit(options, self._policy.timeout_s)
        stages = [
            (self._method, lambda: self._solve_one(problem, warm, options))
        ]
        stages += fallback_stages(
            problem, self._policy, options=self._options,
            trace=self._trace, exclude=self._method,
        )
        return supervise_stages(stages, self._policy)

    def _solve_one(
        self,
        problem: SamplingProblem,
        warm: np.ndarray | None,
        options: GradientProjectionOptions | None = None,
    ) -> SamplingSolution:
        options = options if options is not None else self._options
        if self._method != "gradient_projection":
            return solve(
                problem, method=self._method, options=options,
                trace=self._trace, presolve=self._presolve,
            )
        if not self._presolve:
            return solve_gradient_projection(
                problem, options=options, warm_start=warm,
                trace=self._trace,
            )
        reduction = problem.presolve()
        forced = reduction.forced_solution()
        if forced is not None:
            return forced
        if reduction.identity:
            return solve_gradient_projection(
                problem, options=options, warm_start=warm,
                trace=self._trace,
            )
        warm_reduced = reduction.restrict_rates(warm) if warm is not None else None
        inner = solve_gradient_projection(
            reduction.problem, options=options,
            warm_start=warm_reduced, trace=self._trace,
        )
        kkt_tolerance = (
            options.kkt_tolerance
            if options is not None
            else GradientProjectionOptions().kkt_tolerance
        )
        return reduction.lift(inner, kkt_tolerance=kkt_tolerance)


def solve_chain(
    problems: Iterable[SamplingProblem],
    method: str = "gradient_projection",
    options: GradientProjectionOptions | None = None,
    warm_start: bool = True,
    trace: SolverTrace | None = None,
    presolve: bool = False,
    policy: "SupervisorPolicy | None" = None,
) -> list[SamplingSolution]:
    """Solve an ordered family, chaining warm starts between neighbours.

    A single ``trace`` spans the whole family — each member solve
    contributes its own solve scope, so per-solve convergence curves
    stay separable in the manifest.  A ``policy`` runs every member
    solve supervised (timeout / retries / fallback chain) so one bad
    member degrades instead of aborting the family.
    """
    chain = WarmStartChain(
        method=method, options=options, warm_start=warm_start, trace=trace,
        presolve=presolve, policy=policy,
    )
    return [chain.solve(problem) for problem in problems]


def solve_theta_sweep(
    problem: SamplingProblem,
    thetas: Sequence[float],
    clamp: bool = True,
    method: str = "gradient_projection",
    options: GradientProjectionOptions | None = None,
    warm_start: bool = True,
    trace: SolverTrace | None = None,
    presolve: bool = False,
    policy: "SupervisorPolicy | None" = None,
    checkpoint: "str | Path | None" = None,
) -> list[SamplingSolution]:
    """Solve ``problem`` across a capacity sweep (Figure 2's shape).

    Each point re-uses the previous point's optimum as a warm start —
    adjacent capacities have adjacent optima, so the sweep costs far
    fewer iterations than independent solves.  With ``clamp`` (default)
    capacities beyond what the candidate links can absorb saturate
    instead of raising, which is how sweep curves plateau.

    ``presolve`` reduces the topology *once* — every reduction is
    θ-independent — and runs the whole chain in the reduced space,
    lifting each point back to a full-space solution.  On instances
    with redundant links this shrinks every member solve; when nothing
    reduces the sweep is identical to the plain path.  Points the
    clamp pins to saturation skip the solver entirely
    (:meth:`ReducedProblem.forced_solution`), and the lifted family is
    re-certified against the full-space KKT conditions in one stacked
    pass (:func:`~repro.core.kkt.check_kkt_family`) instead of one
    gradient assembly per point.

    ``checkpoint`` names a JSONL file each completed point is appended
    to (fsynced per entry); rerunning the same sweep against the same
    file restores the completed prefix, seeds the warm-start chain
    from the last restored optimum and solves only the remainder —
    bitwise-identical to the uninterrupted sweep.  ``policy`` runs
    each member supervised (see :func:`solve_chain`).  Either option
    routes through the member-at-a-time chain, bypassing the stacked
    presolved fast path.
    """
    instances = []
    for theta in thetas:
        if theta <= 0:
            raise ValueError("theta values must be positive")
        instance = problem.with_theta(float(theta))
        instances.append(instance.clamped() if clamp else instance)
    with span("batch.theta_sweep", points=len(instances),
              presolve=presolve, checkpointed=checkpoint is not None):
        if checkpoint is not None:
            return _solve_checkpointed_sweep(
                instances, thetas, checkpoint, method=method, options=options,
                warm_start=warm_start, trace=trace, presolve=presolve,
                policy=policy,
            )
        if presolve and policy is None:
            base = problem.presolve()
            if not base.identity:
                return _solve_presolved_sweep(
                    base, instances, method=method, options=options,
                    warm_start=warm_start, trace=trace,
                )
        return solve_chain(
            instances, method=method, options=options, warm_start=warm_start,
            trace=trace, presolve=(presolve and policy is not None),
            policy=policy,
        )


def _solve_checkpointed_sweep(
    instances: Sequence[SamplingProblem],
    thetas: Sequence[float],
    checkpoint: "str | Path",
    method: str,
    options: GradientProjectionOptions | None,
    warm_start: bool,
    trace: SolverTrace | None,
    presolve: bool,
    policy: "SupervisorPolicy | None",
) -> list[SamplingSolution]:
    """Run a θ sweep against a crash-safe JSONL checkpoint.

    Completed entries restore without re-solving; the chain is seeded
    with the last restored optimum so the remaining members see the
    exact warm starts the uninterrupted sweep would have produced —
    resumed rates are bitwise-equal (JSON float repr round-trips
    IEEE-754 doubles exactly).
    """
    from ..resilience.checkpoint import SweepCheckpoint

    if not instances:
        return []
    store = SweepCheckpoint(
        checkpoint, thetas=[float(t) for t in thetas],
        num_links=instances[0].num_links, method=method,
    )
    completed = store.load()
    store.write_header()
    chain = WarmStartChain(
        method=method, options=options, warm_start=warm_start, trace=trace,
        presolve=presolve, policy=policy,
    )
    kkt_tolerance = (
        options.kkt_tolerance
        if options is not None and method == "gradient_projection"
        else GradientProjectionOptions().kkt_tolerance
    )
    solutions: list[SamplingSolution] = []
    for index, instance in enumerate(instances):
        entry = completed.get(index)
        if entry is not None:
            solution = store.restore_solution(
                instance, entry, kkt_tolerance=kkt_tolerance
            )
            chain.seed(instance, solution.rates)
            METRICS.increment("resilience.checkpoint.skipped")
            solutions.append(solution)
            continue
        solution = chain.solve(instance)
        store.append(index, solution)
        solutions.append(solution)
    return solutions


def _solve_presolved_sweep(
    base: ReducedProblem,
    instances: Sequence[SamplingProblem],
    method: str,
    options: GradientProjectionOptions | None,
    warm_start: bool,
    trace: SolverTrace | None,
) -> list[SamplingSolution]:
    """Chain a θ sweep through one reduction, certify the family once.

    Per-point full-space re-certification would cost one gradient
    assembly per θ — a single ``check_kkt_family`` call batches all of
    them through one rmatmat, which is what keeps the presolved sweep's
    per-point overhead below the warm chain's marginal solve cost.
    """
    reductions = [
        base.with_theta(instance.theta_packets) for instance in instances
    ]
    chain = WarmStartChain(
        method=method, options=options, warm_start=warm_start, trace=trace,
    )
    solutions: list[SamplingSolution | None] = [None] * len(reductions)
    solved: list[int] = []
    for index, reduction in enumerate(reductions):
        forced = reduction.forced_solution()
        if forced is not None:
            solutions[index] = forced
            continue
        inner = chain.solve(reduction.problem)
        solutions[index] = reduction.lift(inner)
        solved.append(index)
    if solved:
        kkt_tolerance = (
            options.kkt_tolerance
            if options is not None and method == "gradient_projection"
            else GradientProjectionOptions().kkt_tolerance
        )
        reports = check_kkt_family(
            instances[solved[0]],
            np.stack([solutions[index].rates for index in solved]),
            tolerance=kkt_tolerance,
            theta_rates=[instances[index].theta_rate_pps for index in solved],
        )
        for index, report in zip(solved, reports):
            lifted = solutions[index]
            solutions[index] = SamplingSolution(
                problem=lifted.problem,
                rates=lifted.rates,
                diagnostics=dataclasses.replace(
                    lifted.diagnostics, kkt=report
                ),
            )
    return solutions


def _solve_single(
    payload: tuple[SamplingProblem, str, GradientProjectionOptions | None, bool],
) -> SamplingSolution:
    problem, method, options, presolve = payload
    return solve(problem, method=method, options=options, presolve=presolve)


def _solve_shared(payload) -> tuple[np.ndarray, object]:
    """Pool target for shared-memory tasks: attach, solve, return rates.

    Returns ``(rates, diagnostics)`` rather than the full solution —
    the parent re-binds them to *its* problem object, so the worker
    never pickles the problem back across the pipe.
    """
    handle, method, options, presolve = payload
    from .shm import attach_problem

    problem = attach_problem(handle)
    solution = solve(problem, method=method, options=options, presolve=presolve)
    return solution.rates, solution.diagnostics


@dataclasses.dataclass
class _ObsEnvelope:
    """A pool task's result wrapped with its observability payload.

    ``metrics`` is a snapshot-shaped delta of what the worker recorded
    while running the task (see :func:`diff_snapshots`); ``spans`` are
    the worker's finished spans as dicts.  The parent unwraps exactly
    one envelope per *successful* result, so retried tasks can never
    double-merge.
    """

    result: object
    metrics: dict | None
    spans: list


def _obs_context() -> dict | None:
    """What the parent ships so workers stitch observability back.

    None when both spans and metrics are off in the parent — the
    common case — so the pool path stays payload-identical to the
    uninstrumented one.
    """
    context: dict = {}
    if METRICS.enabled:
        context["metrics"] = True
    span_context = current_span_context()
    if span_context is not None:
        context["spans"] = span_context
    return context or None


def _run_observed(kind: str, payload, index: int, attempt: int, obs: dict):
    """Worker-side task body under shipped observability context.

    Enables the worker-local registry for the task (restoring after),
    runs the solve inside a ``batch.task`` span parented to the
    shipped remote context, and returns an :class:`_ObsEnvelope` with
    the metrics delta and recorded spans.
    """
    collect_metrics = obs.get("metrics", False)
    span_context = obs.get("spans")
    was_enabled = METRICS.enabled
    # Snapshot unconditionally: a reused worker's registry still holds
    # earlier tasks' counts even when collection was toggled off
    # between tasks, and those must not ship twice.
    before = METRICS.snapshot() if collect_metrics else None
    if collect_metrics and not was_enabled:
        METRICS.enable()
    try:
        submitted = obs.get("submitted_s")
        if submitted is not None:
            METRICS.observe_histogram(
                "batch.pool.queue_wait_seconds", time.time() - submitted
            )
        if span_context is not None:
            with remote_span_context(
                span_context, label=f"worker:{os.getpid()}"
            ) as recorder:
                with span("batch.task", index=index, attempt=attempt,
                          kind=kind):
                    result = _dispatch_task(kind, payload)
            shipped = [item.to_dict() for item in recorder.spans]
        else:
            result = _dispatch_task(kind, payload)
            shipped = []
        delta = (
            diff_snapshots(METRICS.snapshot(), before)
            if collect_metrics
            else None
        )
    finally:
        if collect_metrics and not was_enabled:
            METRICS.disable()
    return _ObsEnvelope(result=result, metrics=delta, spans=shipped)


def _dispatch_task(kind: str, payload):
    if kind == "shared":
        return _solve_shared(payload)
    return _solve_single(payload)


def _pool_run(task):
    """Pool entry point: arm fault injection, then dispatch by kind.

    ``task`` is ``(kind, payload, index, attempt, plan, obs)``.  The
    fault plan travels *inside* the task (a forked worker's inherited
    module state is a snapshot, and spawn-start workers have none), so
    worker behaviour is governed entirely by what the parent shipped.
    ``obs`` (or None) likewise carries the parent's span context and
    metrics opt-in — worker registries and recorders are process-local
    snapshots, so enablement cannot be inherited reliably either.
    """
    kind, payload, index, attempt, plan, obs = task
    from ..resilience import faults

    if plan is not None:
        faults.install_faults(plan)
    else:
        faults.clear_faults()
    faults.maybe_fire(faults.SITE_WORKER_EXIT, index=index, attempt=attempt)
    if obs is not None:
        return _run_observed(kind, payload, index, attempt, obs)
    return _dispatch_task(kind, payload)


def _merge_envelope(envelope: _ObsEnvelope) -> None:
    """Fold one worker envelope into the parent's registry and trace."""
    if envelope.metrics is not None:
        METRICS.merge_snapshot(envelope.metrics)
    if envelope.spans:
        recorder = active_span_recorder()
        if recorder is not None:
            recorder.absorb(envelope.spans)


def _run_crash_safe_pool(
    tasks: Sequence[tuple[int, str, tuple]],
    workers: int,
    context,
    max_pool_restarts: int,
    task_retries: int,
    inline_solve: Callable[[int], SamplingSolution],
) -> dict[int, object]:
    """Run pool tasks to completion despite dying workers.

    A worker that exits uncleanly (SIGKILL, ``os._exit``) breaks the
    whole :class:`ProcessPoolExecutor` — every unfinished future raises
    :class:`BrokenProcessPool`.  This driver keeps already-completed
    results, re-queues the lost tasks with a bumped attempt counter
    (so index-keyed injected faults fire exactly once) and restarts a
    fresh pool, up to ``max_pool_restarts`` times; past that the
    remainder degrades to inline execution in the parent.  Tasks that
    *raise* (as opposed to killing their worker) retry up to
    ``task_retries`` times before going inline.

    Counters: ``resilience.pool.broken`` / ``resilience.pool.requeued``
    / ``resilience.pool.inline_degraded`` for pool deaths,
    ``resilience.task.requeued`` / ``resilience.task.inline`` for
    task-level failures.
    """
    from ..resilience import faults as fault_mod

    plan = fault_mod.active_plan()
    base_obs = _obs_context()
    payloads = {index: (kind, payload) for index, kind, payload in tasks}
    attempts = {index: 0 for index, _, _ in tasks}
    results: dict[int, object] = {}
    pending = [index for index, _, _ in tasks]
    pool_failures = 0
    while pending:
        if pool_failures > max_pool_restarts:
            METRICS.increment("resilience.pool.inline_degraded")
            logger.warning(
                "process pool died %d times; solving %d remaining tasks inline",
                pool_failures, len(pending),
            )
            for index in pending:
                results[index] = inline_solve(index)
            return results
        requeue: list[int] = []
        broken = False
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=context
        ) as executor:
            futures = {}
            for index in pending:
                kind, payload = payloads[index]
                task_obs = (
                    None
                    if base_obs is None
                    else {**base_obs, "submitted_s": time.time()}
                )
                futures[
                    executor.submit(
                        _pool_run,
                        (kind, payload, index, attempts[index], plan, task_obs),
                    )
                ] = index
            for future in as_completed(futures):
                index = futures[future]
                try:
                    value = future.result()
                except BrokenProcessPool:
                    broken = True
                except Exception as exc:  # noqa: BLE001 - isolate task faults
                    attempts[index] += 1
                    record_span(
                        "batch.task", duration_s=0.0, status="error",
                        index=index, attempt=attempts[index] - 1,
                        error=type(exc).__name__,
                    )
                    if attempts[index] <= task_retries:
                        METRICS.increment("resilience.task.requeued")
                        logger.warning(
                            "pool task %d failed (%s); re-queueing", index, exc
                        )
                        requeue.append(index)
                    else:
                        METRICS.increment("resilience.task.inline")
                        logger.warning(
                            "pool task %d failed %d times (%s); solving inline",
                            index, attempts[index], exc,
                        )
                        results[index] = inline_solve(index)
                else:
                    if isinstance(value, _ObsEnvelope):
                        _merge_envelope(value)
                        value = value.result
                    results[index] = value
        if broken:
            pool_failures += 1
            METRICS.increment("resilience.pool.broken")
            lost = [
                index for index in pending
                if index not in results and index not in requeue
            ]
            for index in lost:
                # The worker died before shipping its span; close the
                # task on the parent side so the trace shows the loss.
                record_span(
                    "batch.task", duration_s=0.0, status="error",
                    index=index, attempt=attempts[index],
                    error="BrokenProcessPool",
                )
                attempts[index] += 1
            METRICS.increment("resilience.pool.requeued", len(lost))
            logger.warning(
                "process pool broke; restarting and re-queueing %d lost tasks",
                len(lost),
            )
            requeue.extend(lost)
        pending = requeue
    return results


def solve_batch(
    problems: Sequence[SamplingProblem],
    processes: int | None = None,
    method: str = "gradient_projection",
    options: GradientProjectionOptions | None = None,
    presolve: bool = False,
    shared_memory: bool = True,
    start_method: str | None = None,
    max_pool_restarts: int = 2,
    task_retries: int = 1,
) -> list[SamplingSolution]:
    """Solve independent problems, optionally across a process pool.

    ``processes`` is the worker count; ``None`` defaults to
    ``min(os.cpu_count(), len(problems))``, capped by the
    ``REPRO_MAX_PROCESSES`` environment variable when set (so CI
    runners and nested fan-outs don't oversubscribe shared machines —
    an explicit ``processes`` argument ignores the cap).  Batches of
    at most two
    problems (or ``processes <= 1``) always run inline — a pool can
    never amortize its spawn cost over so few solves.  Ordering of the
    results always matches the input.  Use this for *independent*
    instances — scenario grids, per-topology batches; for ordered
    families where neighbours inform each other, prefer
    :func:`solve_chain`.

    With ``shared_memory`` (default) the pooled path publishes each
    distinct problem family once via
    :class:`~repro.core.shm.SharedProblemPool` and sends workers small
    handles instead of pickled matrices; problems that cannot be
    shared (heterogeneous utilities) fall back to the pickle path for
    the whole batch, counted in ``batch.shm.fallback``.
    ``start_method`` forces a multiprocessing start method
    (``fork`` / ``forkserver`` / ``spawn``) — CI uses ``forkserver``
    to shake out shared-memory lifecycle leaks.

    Observability: pool fan-out is recorded on the parent registry
    (``batch.pool.tasks`` / ``batch.pool.workers``, plus the
    ``batch.shm.*`` publication counters).  When the parent has
    metrics collection or span recording on, each task additionally
    ships the parent's context into the worker and returns an
    :class:`_ObsEnvelope`: the worker's counter/gauge/timer/histogram
    delta merges into the parent registry (so ``solver.*`` /
    ``routing.*`` / ``objective.*`` reflect pooled work) and its
    ``batch.task`` span subtree stitches under the parent's open span.
    Workers that die before shipping get a parent-synthesized
    ``batch.task`` span with ``status="error"``; deltas only travel
    with successful results, so requeued tasks never merge twice.

    Crash safety: a worker that dies mid-task (OOM kill, segfault,
    injected ``worker.exit``) no longer aborts the batch — lost tasks
    are re-queued onto a fresh pool up to ``max_pool_restarts`` times,
    tasks that raise retry up to ``task_retries`` times, and past
    either budget the remainder runs inline in the parent (see
    :func:`_run_crash_safe_pool` for the counters).  Result ordering
    still matches the input.
    """
    if processes is None:
        processes = _default_processes(len(problems))
    if processes <= 1 or len(problems) <= _INLINE_BATCH_MAX:
        METRICS.increment("batch.sequential.tasks", len(problems))
        with span("batch.solve_batch", tasks=len(problems), mode="inline"):
            return [
                solve(problem, method=method, options=options,
                      presolve=presolve)
                for problem in problems
            ]

    workers = min(processes, len(problems))
    METRICS.increment("batch.pool.tasks", len(problems))
    METRICS.increment("batch.pool.dispatches")
    METRICS.gauge("batch.pool.workers", workers)
    context = (
        multiprocessing.get_context(start_method) if start_method else None
    )

    def _inline(index: int) -> SamplingSolution:
        return solve(
            problems[index], method=method, options=options, presolve=presolve
        )

    if shared_memory:
        from .shm import SharedProblemPool, shared_memory_available

        if shared_memory_available():
            with SharedProblemPool() as pool:
                handles = [pool.publish(problem) for problem in problems]
                if all(handle is not None for handle in handles):
                    tasks = [
                        (index, "shared", (handle, method, options, presolve))
                        for index, handle in enumerate(handles)
                    ]
                    avoided = (
                        sum(handle.payload_bytes for handle in handles)
                        - pool.bytes_shared
                    )
                    METRICS.increment("batch.shm.tasks", len(tasks))
                    METRICS.increment("batch.shm.dispatches")
                    METRICS.increment("batch.shm.bytes_avoided", int(avoided))
                    with span("batch.solve_batch", tasks=len(tasks),
                              workers=workers, mode="pool-shm"):
                        with METRICS.timer("batch.pool.map"):
                            results = _run_crash_safe_pool(
                                tasks, workers, context, max_pool_restarts,
                                task_retries, _inline,
                            )
                    solutions = []
                    for index, problem in enumerate(problems):
                        result = results[index]
                        if isinstance(result, SamplingSolution):
                            solutions.append(result)  # inline-degraded task
                        else:
                            rates, diagnostics = result
                            solutions.append(
                                SamplingSolution(
                                    problem=problem, rates=rates,
                                    diagnostics=diagnostics,
                                )
                            )
                    return solutions
        METRICS.increment("batch.shm.fallback")

    tasks = [
        (index, "single", (problem, method, options, presolve))
        for index, problem in enumerate(problems)
    ]
    with span("batch.solve_batch", tasks=len(tasks), workers=workers,
              mode="pool-pickle"):
        with METRICS.timer("batch.pool.map"):
            results = _run_crash_safe_pool(
                tasks, workers, context, max_pool_restarts, task_retries,
                _inline,
            )
    return [results[index] for index in range(len(problems))]
