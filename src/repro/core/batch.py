"""Families of solves: warm-started chains, θ sweeps, parallel batches.

The paper's evaluation repeatedly solves *families* of closely related
problems — the capacity sweep behind Figure 2, per-interval
re-optimization under traffic change (§I's motivation), failure
scenarios.  Two structural facts make families much cheaper than
independent solves:

* adjacent instances have nearby optima, so chaining each solution
  into the next solve as a warm start (projected onto the new feasible
  set) collapses the iteration count;
* instances *across* families are independent, so they fan out over a
  process pool.

:class:`WarmStartChain` is the stateful primitive (the adaptive
controller holds one across control intervals); :func:`solve_chain`
and :func:`solve_theta_sweep` run a whole family through a chain; and
:func:`solve_batch` distributes independent problems over
``concurrent.futures`` workers.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Sequence

import numpy as np

from ..obs.metrics import METRICS
from ..obs.trace import SolverTrace
from .gradient_projection import (
    GradientProjectionOptions,
    solve_gradient_projection,
)
from .problem import SamplingProblem
from .solution import SamplingSolution
from .solver import solve

__all__ = [
    "WarmStartChain",
    "solve_chain",
    "solve_theta_sweep",
    "solve_batch",
]


class WarmStartChain:
    """Solve successive problems, warm-starting each from the last optimum.

    Warm starts apply only to the gradient-projection method (the SciPy
    reference solvers take no starting point through the façade) and
    only when the link count is unchanged — a topology change (e.g. a
    failure scenario) silently falls back to a cold start, which is
    exactly the semantics re-optimization loops need.
    """

    def __init__(
        self,
        method: str = "gradient_projection",
        options: GradientProjectionOptions | None = None,
        warm_start: bool = True,
        trace: SolverTrace | None = None,
    ) -> None:
        self._method = method
        self._options = options
        self._warm_start = warm_start
        self._trace = trace
        self._previous_rates: np.ndarray | None = None

    @property
    def previous_rates(self) -> np.ndarray | None:
        """The last optimum's full-length rate vector (or None)."""
        return self._previous_rates

    def reset(self) -> None:
        """Forget the chain state; the next solve starts cold."""
        self._previous_rates = None

    def solve(self, problem: SamplingProblem) -> SamplingSolution:
        warm = None
        if (
            self._warm_start
            and self._method == "gradient_projection"
            and self._previous_rates is not None
            and self._previous_rates.shape == (problem.num_links,)
        ):
            warm = self._previous_rates
        METRICS.increment(
            "batch.warm_start.hit" if warm is not None else "batch.warm_start.miss"
        )
        if self._method == "gradient_projection":
            solution = solve_gradient_projection(
                problem, options=self._options, warm_start=warm,
                trace=self._trace,
            )
        else:
            solution = solve(
                problem, method=self._method, options=self._options,
                trace=self._trace,
            )
        self._previous_rates = solution.rates
        return solution


def solve_chain(
    problems: Iterable[SamplingProblem],
    method: str = "gradient_projection",
    options: GradientProjectionOptions | None = None,
    warm_start: bool = True,
    trace: SolverTrace | None = None,
) -> list[SamplingSolution]:
    """Solve an ordered family, chaining warm starts between neighbours.

    A single ``trace`` spans the whole family — each member solve
    contributes its own solve scope, so per-solve convergence curves
    stay separable in the manifest.
    """
    chain = WarmStartChain(
        method=method, options=options, warm_start=warm_start, trace=trace
    )
    return [chain.solve(problem) for problem in problems]


def solve_theta_sweep(
    problem: SamplingProblem,
    thetas: Sequence[float],
    clamp: bool = True,
    method: str = "gradient_projection",
    options: GradientProjectionOptions | None = None,
    warm_start: bool = True,
    trace: SolverTrace | None = None,
) -> list[SamplingSolution]:
    """Solve ``problem`` across a capacity sweep (Figure 2's shape).

    Each point re-uses the previous point's optimum as a warm start —
    adjacent capacities have adjacent optima, so the sweep costs far
    fewer iterations than independent solves.  With ``clamp`` (default)
    capacities beyond what the candidate links can absorb saturate
    instead of raising, which is how sweep curves plateau.
    """
    instances = []
    for theta in thetas:
        if theta <= 0:
            raise ValueError("theta values must be positive")
        instance = problem.with_theta(float(theta))
        instances.append(instance.clamped() if clamp else instance)
    return solve_chain(
        instances, method=method, options=options, warm_start=warm_start,
        trace=trace,
    )


def _solve_single(
    payload: tuple[SamplingProblem, str, GradientProjectionOptions | None],
) -> SamplingSolution:
    problem, method, options = payload
    return solve(problem, method=method, options=options)


def solve_batch(
    problems: Sequence[SamplingProblem],
    processes: int | None = None,
    method: str = "gradient_projection",
    options: GradientProjectionOptions | None = None,
) -> list[SamplingSolution]:
    """Solve independent problems, optionally across a process pool.

    ``processes`` is the worker count; ``None`` or ``1`` solves
    sequentially in-process (no pool overhead, easier debugging).
    Ordering of the results always matches the input.  Use this for
    *independent* instances — scenario grids, per-topology batches;
    for ordered families where neighbours inform each other, prefer
    :func:`solve_chain`.

    Observability: pool fan-out is recorded on the parent registry
    (``batch.pool.tasks`` / ``batch.pool.workers``); counters
    incremented *inside* worker processes stay in those processes —
    the metrics registry is deliberately process-local.
    """
    payloads = [(problem, method, options) for problem in problems]
    if not processes or processes <= 1 or len(problems) <= 1:
        METRICS.increment("batch.sequential.tasks", len(payloads))
        return [_solve_single(payload) for payload in payloads]
    workers = min(processes, len(problems))
    METRICS.increment("batch.pool.tasks", len(payloads))
    METRICS.increment("batch.pool.dispatches")
    METRICS.gauge("batch.pool.workers", workers)
    with METRICS.timer("batch.pool.map"):
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_solve_single, payloads))
