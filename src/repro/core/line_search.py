"""Newton one-dimensional maximization along a search direction (§IV-D).

The objective restricted to a ray, ``φ(t) = f(x + t s)``, is concave
and C², so its derivative ``ψ(t) = φ'(t)`` is continuous and
decreasing; maximizing ``φ`` on ``[0, t_max]`` means finding the root
of ``ψ`` or stopping at the boundary.  The paper chooses Newton's
method for its fast convergence; we safeguard every Newton step with a
maintained sign-change bracket and fall back to bisection when a step
leaves it, so the search is robust even where the curvature is tiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .objective import ObjectiveRay

__all__ = [
    "LineSearchResult",
    "line_search_along_ray",
    "newton_line_search",
    "golden_section_line_search",
]

#: 1/φ and 1/φ² — the golden-section interval ratios.
_INV_PHI = 0.6180339887498949
_INV_PHI2 = 0.3819660112501051


@dataclass(frozen=True)
class LineSearchResult:
    """Outcome of a one-dimensional search.

    ``hit_boundary`` is True when the maximizer lies at ``t_max`` — the
    step ran into an inactive constraint that must now be activated.
    """

    step: float
    hit_boundary: bool
    newton_iterations: int


def line_search_along_ray(
    ray: "ObjectiveRay",
    t_max: float,
    method: str = "newton",
    tolerance: float = 1e-10,
) -> LineSearchResult:
    """Run the configured 1-D search on an objective ray.

    The ray (see :meth:`~repro.core.objective.Objective.along_ray`)
    presents ``φ``, ``φ'`` and ``φ''`` of the restriction; with the
    incremental routed rays each trial point costs ``O(K)`` adds
    instead of a matvec, which is where the solver's inner-loop
    complexity changes.
    """
    if method == "newton":
        return newton_line_search(
            slope=ray.slope,
            curvature=ray.curvature,
            t_max=t_max,
            tolerance=tolerance,
        )
    if method == "golden":
        return golden_section_line_search(
            value=ray.value,
            slope=ray.slope,
            t_max=t_max,
            tolerance=tolerance,
        )
    raise ValueError(f"unknown line-search method {method!r}")


def newton_line_search(
    slope: Callable[[float], float],
    curvature: Callable[[float], float],
    t_max: float,
    tolerance: float = 1e-10,
    max_iterations: int = 100,
) -> LineSearchResult:
    """Maximize a concave ``φ`` on ``[0, t_max]`` given ``φ'`` and ``φ''``.

    Parameters
    ----------
    slope, curvature:
        ``φ'(t)`` and ``φ''(t)``.  ``φ'`` must be non-increasing
        (concavity); ``φ'(0) > 0`` is expected (ascent direction).
    t_max:
        Boundary of the feasible segment (may be ``inf`` only when the
        slope eventually turns negative).
    tolerance:
        Convergence threshold on ``|φ'(t)|`` relative to ``φ'(0)``.
    """
    if t_max < 0:
        raise ValueError("t_max must be non-negative")
    slope0 = slope(0.0)
    if slope0 <= 0.0:
        return LineSearchResult(step=0.0, hit_boundary=False, newton_iterations=0)
    if t_max == 0.0:
        return LineSearchResult(step=0.0, hit_boundary=True, newton_iterations=0)

    target = tolerance * abs(slope0)

    # If the slope is still non-negative at the boundary, the concave φ
    # is maximized there: the step hits the blocking constraint.
    if t_max != float("inf"):
        if slope(t_max) >= -target:
            return LineSearchResult(step=t_max, hit_boundary=True, newton_iterations=0)
        hi = t_max
    else:
        # Expand until the slope turns negative to obtain a bracket.
        hi = 1.0
        for _ in range(200):
            if slope(hi) < 0:
                break
            hi *= 2.0
        else:
            raise ValueError("slope never turns negative on an unbounded ray")

    lo = 0.0
    t = min(hi, max(0.0, _newton_step(0.0, slope0, curvature(0.0), lo, hi)))
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        psi = slope(t)
        if abs(psi) <= target:
            break
        if psi > 0:
            lo = t
        else:
            hi = t
        t_next = _newton_step(t, psi, curvature(t), lo, hi)
        t = t_next
        if hi - lo <= 1e-15 * max(1.0, hi):
            break
    return LineSearchResult(step=t, hit_boundary=False, newton_iterations=iterations)


def _newton_step(t: float, psi: float, psi_prime: float, lo: float, hi: float) -> float:
    """One safeguarded Newton step: bisect when Newton leaves (lo, hi)."""
    if psi_prime < 0:
        candidate = t - psi / psi_prime
        if lo < candidate < hi:
            return candidate
    return 0.5 * (lo + hi)


def golden_section_line_search(
    value: Callable[[float], float],
    slope: Callable[[float], float],
    t_max: float,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> LineSearchResult:
    """Derivative-light alternative: golden-section on ``[0, t_max]``.

    The ablation counterpart of :func:`newton_line_search` (DESIGN.md
    §6): needs only ``φ`` evaluations plus one boundary slope check, at
    the cost of linear (ratio ``1/φ``) instead of quadratic
    convergence.  Requires a finite ``t_max`` (the solver always has
    one unless the direction is strictly interior, in which case the
    slope check falls back to an expanding bracket).
    """
    if t_max < 0:
        raise ValueError("t_max must be non-negative")
    if slope(0.0) <= 0.0:
        return LineSearchResult(step=0.0, hit_boundary=False, newton_iterations=0)
    if t_max == 0.0:
        return LineSearchResult(step=0.0, hit_boundary=True, newton_iterations=0)
    if t_max == float("inf"):
        # Expand until the function turns down, then search inside.
        hi = 1.0
        for _ in range(200):
            if slope(hi) < 0:
                break
            hi *= 2.0
        else:
            raise ValueError("slope never turns negative on an unbounded ray")
        t_max = hi
    elif slope(t_max) >= 0.0:
        return LineSearchResult(step=t_max, hit_boundary=True, newton_iterations=0)

    lo, hi = 0.0, t_max
    left = lo + _INV_PHI2 * (hi - lo)
    right = lo + _INV_PHI * (hi - lo)
    f_left, f_right = value(left), value(right)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if hi - lo <= tolerance * max(1.0, t_max):
            break
        if f_left >= f_right:
            hi, right, f_right = right, left, f_left
            left = lo + _INV_PHI2 * (hi - lo)
            f_left = value(left)
        else:
            lo, left, f_left = left, right, f_right
            right = lo + _INV_PHI * (hi - lo)
            f_right = value(right)
    return LineSearchResult(
        step=0.5 * (lo + hi), hit_boundary=False, newton_iterations=iterations
    )
