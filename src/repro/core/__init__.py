"""Core optimizer: the paper's joint placement-and-sampling contribution."""

from .active_set import ActiveSet, Multipliers
from .batch import WarmStartChain, solve_batch, solve_chain, solve_theta_sweep
from .effective_rate import (
    approximation_error,
    exact_effective_rates,
    linear_effective_rates,
)
from .gradient_projection import (
    GradientProjectionOptions,
    initial_feasible_point,
    solve_gradient_projection,
)
from .kkt import KKTReport, check_kkt, check_kkt_family
from .line_search import (
    LineSearchResult,
    golden_section_line_search,
    line_search_along_ray,
    newton_line_search,
)
from .objective import (
    Objective,
    ObjectiveRay,
    SoftMinUtilityObjective,
    SumUtilityObjective,
)
from .presolve import PresolveStats, ReducedProblem, presolve
from .problem import InfeasibleProblemError, SamplingProblem
from .routing_op import (
    DenseRoutingOperator,
    RoutingOperator,
    SparseRoutingOperator,
)
from .quantization import QuantizationResult, quantize_rates, quantize_solution
from .robust import RobustProblem, build_robust_problem, solve_robust
from .scipy_solver import solve_scipy
from .sensitivity import (
    CapacityResponsePoint,
    capacity_response,
    marginal_link_values,
    shadow_price,
)
from .solution import SamplingSolution, SolveAttempt, SolverDiagnostics
from .solver import SOLVER_METHODS, solve
from .utility import (
    ExponentialUtility,
    LogUtility,
    MeanSquaredRelativeAccuracy,
    UtilityFunction,
    accuracy_utilities,
)

__all__ = [
    "SamplingProblem",
    "InfeasibleProblemError",
    "SamplingSolution",
    "SolveAttempt",
    "SolverDiagnostics",
    "solve",
    "SOLVER_METHODS",
    "solve_gradient_projection",
    "GradientProjectionOptions",
    "initial_feasible_point",
    "solve_scipy",
    "UtilityFunction",
    "MeanSquaredRelativeAccuracy",
    "LogUtility",
    "ExponentialUtility",
    "accuracy_utilities",
    "Objective",
    "ObjectiveRay",
    "SumUtilityObjective",
    "SoftMinUtilityObjective",
    "RoutingOperator",
    "DenseRoutingOperator",
    "SparseRoutingOperator",
    "WarmStartChain",
    "solve_chain",
    "solve_theta_sweep",
    "solve_batch",
    "linear_effective_rates",
    "exact_effective_rates",
    "approximation_error",
    "ActiveSet",
    "Multipliers",
    "KKTReport",
    "check_kkt",
    "check_kkt_family",
    "presolve",
    "PresolveStats",
    "ReducedProblem",
    "LineSearchResult",
    "newton_line_search",
    "golden_section_line_search",
    "line_search_along_ray",
    "quantize_rates",
    "quantize_solution",
    "QuantizationResult",
    "shadow_price",
    "capacity_response",
    "CapacityResponsePoint",
    "marginal_link_values",
    "RobustProblem",
    "build_robust_problem",
    "solve_robust",
]
