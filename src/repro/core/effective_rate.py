"""Effective sampling rate models (§III, §IV-B).

The *effective sampling rate* ``ρ_k`` of OD pair ``k`` is the
probability that one of its packets is sampled at least once somewhere
in the network.  With i.i.d. per-monitor sampling at rates ``p_i`` and
independent monitors,

    exact:  ρ_k = 1 - Π_i (1 - p_i)^{r_{k,i}}                  (eq. 1)
    linear: ρ_k = Σ_i r_{k,i} · p_i                            (eq. 7)

The linear form is the paper's working approximation, justified by
rates ~0.01 and ≤2 monitors per OD path; §V-B validates that the
error is negligible.  Both models are provided so the approximation
itself can be measured (ablation bench).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear_effective_rates",
    "exact_effective_rates",
    "approximation_error",
]


def _check(routing: np.ndarray, p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    routing = np.asarray(routing, dtype=float)
    p = np.asarray(p, dtype=float)
    if routing.ndim != 2:
        raise ValueError("routing matrix must be 2-D (OD pairs x links)")
    if p.shape != (routing.shape[1],):
        raise ValueError(
            f"sampling vector has shape {p.shape}, expected ({routing.shape[1]},)"
        )
    if np.any(p < 0) or np.any(p > 1):
        raise ValueError("sampling rates must lie in [0, 1]")
    return routing, p


def linear_effective_rates(routing: np.ndarray, p: np.ndarray) -> np.ndarray:
    """``ρ = R p`` — the paper's linear approximation (eq. 7)."""
    routing, p = _check(routing, p)
    return routing @ p


def exact_effective_rates(routing: np.ndarray, p: np.ndarray) -> np.ndarray:
    """``ρ_k = 1 - Π_i (1-p_i)^{r_{k,i}}`` — the exact model (eq. 1).

    Computed in log space for numerical robustness; supports fractional
    routing entries (ECMP), where ``r_{k,i}`` acts as the fraction of
    the pair's packets exposed to monitor ``i``.
    """
    routing, p = _check(routing, p)
    with np.errstate(divide="ignore"):
        log_miss = np.log1p(-np.minimum(p, 1.0 - 1e-15))
    return -np.expm1(routing @ log_miss)


def approximation_error(routing: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Per-OD absolute gap ``linear - exact`` (always >= 0).

    The linear form over-counts multiply-sampled packets, so it upper-
    bounds the exact rate (union bound); the gap is the quantity §V-B
    argues is negligible at backbone-scale rates.
    """
    return linear_effective_rates(routing, p) - exact_effective_rates(routing, p)
