"""The paper's optimal algorithm: gradient projection with active sets.

§IV-D in full: at each iteration the objective's gradient is projected
onto the subspace spanned by the active constraints; the projected
gradient (blended with the previous direction by the Polak-Ribière
rule to damp zig-zagging) gives the search direction, along which a
Newton one-dimensional search either maximizes the objective or runs
into an inactive constraint, which is then activated.  When the
projected gradient vanishes, the Lagrange multipliers decide: all
non-negative → the KKT conditions hold and the point is the *global*
optimum (concave objective over a convex polytope); some negative →
the corresponding active constraints are released and the search
continues.  A run aborts after ``max_iterations`` search directions
(the paper uses 2000 and observes 98.6 % convergence within it).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..obs.metrics import METRICS
from ..obs.spans import record_span, spans_active
from ..obs.trace import SolverTrace, active_trace
from .active_set import ActiveSet
from .kkt import check_kkt
from .line_search import line_search_along_ray
from .objective import Objective, SumUtilityObjective
from .problem import SamplingProblem
from .solution import SamplingSolution, SolverDiagnostics

__all__ = [
    "GradientProjectionOptions",
    "solve_gradient_projection",
    "initial_feasible_point",
]


@dataclass(frozen=True)
class GradientProjectionOptions:
    """Tunable knobs of the gradient-projection solver.

    Defaults follow the paper: 2000 iterations maximum, Polak-Ribière
    blending on.
    """

    max_iterations: int = 2000
    tolerance: float = 1e-9
    line_search_tolerance: float = 1e-10
    polak_ribiere: bool = True
    kkt_tolerance: float = 1e-6
    line_search: str = "newton"
    #: Evaluate line-search trials through the objective's incremental
    #: ray (O(K) per trial).  Off = recompute ``R(x + t s)`` at every
    #: trial — the pre-optimization behaviour, kept for benchmarking.
    incremental_ray: bool = True
    #: Reduced-Newton search directions on the current active set.  On
    #: the free coordinates the problem is a smooth equality-constrained
    #: concave program whose Newton step converges quadratically — the
    #: streaming control plane's warm re-solves finish in a handful of
    #: iterations instead of the first-order path's linear-rate tail.
    #: Off by default: the plain projected gradient is the paper's
    #: algorithm and the behaviour every existing caller was
    #: benchmarked and goldened against.  Requires an objective that
    #: exposes ``curvature_weights`` (the separable Hessian structure);
    #: others silently fall back to the first-order direction.
    warm_newton: bool = False
    #: Cooperative wall-clock budget in seconds (None = unbounded): the
    #: loop checks its monotonic clock between iterations and aborts
    #: with ``converged=False`` once exceeded.  The resilience
    #: supervisor sets this to its per-attempt timeout so slow (rather
    #: than hung) solves stop themselves instead of being abandoned in
    #: a watchdog thread.
    wall_clock_limit_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.tolerance <= 0 or self.line_search_tolerance <= 0:
            raise ValueError("tolerances must be positive")
        if self.line_search not in ("newton", "golden"):
            raise ValueError("line_search must be 'newton' or 'golden'")
        if self.wall_clock_limit_s is not None and self.wall_clock_limit_s <= 0:
            raise ValueError("wall_clock_limit_s must be positive (or None)")


def initial_feasible_point(
    loads: np.ndarray, alpha: np.ndarray, target_rate: float
) -> np.ndarray:
    """A feasible starting point on the capacity plane (§IV-D).

    Water-filling on a uniform sampling rate: start from the single
    rate ``r`` with ``Σ r·u_i = target``, clamp links whose bound ``α``
    is exceeded, and redistribute among the rest.  Terminates in at
    most ``n`` rounds; assumes ``target <= Σ α_i u_i`` (checked by
    :meth:`SamplingProblem.check_feasible`).
    """
    loads = np.asarray(loads, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    if target_rate < 0:
        raise ValueError("target rate must be non-negative")
    x = np.zeros_like(loads)
    unclamped = np.ones(loads.shape, dtype=bool)
    remaining = float(target_rate)
    for _ in range(loads.shape[0]):
        denom = float(loads[unclamped].sum())
        if denom <= 0:
            break
        rate = remaining / denom
        overflow = unclamped & (alpha < rate)
        if not np.any(overflow):
            x[unclamped] = rate
            return x
        x[overflow] = alpha[overflow]
        remaining -= float(alpha[overflow] @ loads[overflow])
        unclamped &= ~overflow
    if remaining > 1e-9 * max(target_rate, 1.0):
        raise ValueError("target rate exceeds Σ α·u: infeasible")
    return x


def solve_gradient_projection(
    problem: SamplingProblem,
    options: GradientProjectionOptions | None = None,
    objective: Objective | None = None,
    warm_start: np.ndarray | None = None,
    trace: SolverTrace | None = None,
) -> SamplingSolution:
    """Solve a :class:`SamplingProblem` with the paper's algorithm.

    Parameters
    ----------
    problem:
        The placement-and-rates problem; must be feasible.
    options:
        Solver knobs; defaults match the paper.
    objective:
        Override the objective (e.g. a
        :class:`~repro.core.objective.SoftMinUtilityObjective`); it must
        be built on the problem's *candidate* routing columns.  By
        default the paper's sum-of-utilities objective is used.
    warm_start:
        Optional full-length rate vector (e.g. a previous interval's
        optimum) used as the starting point after projection onto the
        new feasible set — re-optimization under traffic change (§I's
        motivation) converges much faster from a warm start.
    trace:
        Optional :class:`~repro.obs.trace.SolverTrace` receiving one
        record per iteration.  ``None`` (default) falls back to the
        ambiently installed trace (:func:`repro.obs.trace.tracing`);
        with neither, the loop constructs no records and reads no
        per-iteration clocks.

    Returns
    -------
    SamplingSolution
        Optimal rates over all network links (zeros on deactivated
        monitors), with convergence diagnostics and a KKT certificate.
    """
    t_start = perf_counter()
    options = options or GradientProjectionOptions()
    problem.check_feasible()
    if trace is None:
        trace = active_trace()

    cand = np.flatnonzero(problem.candidate_mask)
    loads = problem.link_loads_pps[cand]
    alpha = problem.alpha[cand]
    if objective is None:
        objective = SumUtilityObjective(
            problem.candidate_routing_op(), problem.utilities
        )

    if warm_start is not None:
        warm_start = np.asarray(warm_start, dtype=float)
        if warm_start.shape != (problem.num_links,):
            raise ValueError("warm start does not match link count")
        x = _project_to_feasible(
            warm_start[cand], loads, alpha, problem.theta_rate_pps
        )
    else:
        x = initial_feasible_point(loads, alpha, problem.theta_rate_pps)
    active = ActiveSet(loads, alpha)
    active.sync_with_point(x)

    if trace is not None:
        trace.begin_solve(
            method="gradient_projection",
            num_links=problem.num_links,
            num_od_pairs=problem.num_od_pairs,
            candidate_links=int(x.size),
            theta_packets=problem.theta_packets,
            warm_start=warm_start is not None,
            objective=type(objective).__name__,
            backend=getattr(
                getattr(objective, "routing_operator", None), "backend", ""
            ),
            line_search=options.line_search,
            incremental_ray=options.incremental_ray,
        )

    def _emit(event: str, step: float, trials: int) -> None:
        # Emission sites are guarded by ``trace is not None``; the
        # objective value here shares the ρ memo with the surrounding
        # gradient/KKT evaluations, so tracing adds no extra matvec.
        trace.emit(
            iteration=iterations,
            event=event,
            objective=objective.value(x),
            gradient_norm=gradient_norm,
            projected_gradient_norm=projected_norm,
            step_length=step,
            line_search_trials=trials,
            active_set_size=int(x.size - active.num_free()),
            constraint_releases=releases,
            wall_time_s=perf_counter() - t_start,
        )

    use_newton = options.warm_newton and hasattr(objective, "curvature_weights")
    iterations = 0
    releases = 0
    line_search_evaluations = 0
    converged = False
    message = ""
    prev_projected: np.ndarray | None = None
    prev_direction: np.ndarray | None = None

    timed_out = False
    while iterations < options.max_iterations:
        if (
            options.wall_clock_limit_s is not None
            and perf_counter() - t_start > options.wall_clock_limit_s
        ):
            timed_out = True
            METRICS.increment("solver.gp.wall_clock_aborts")
            break
        iterations += 1
        g = objective.gradient(x)
        projected = active.project(g)
        gradient_norm = float(np.abs(g).max())
        projected_norm = float(np.abs(projected).max())
        scale = max(1.0, gradient_norm)

        if projected_norm <= options.tolerance * scale:
            # Stationary on the current active set: ask the multipliers.
            mult = active.multipliers(g)
            release_tol = options.tolerance * scale
            neg_lower = mult.negative_lower(release_tol)
            neg_upper = mult.negative_upper(release_tol)
            if neg_lower.size == 0 and neg_upper.size == 0:
                converged = True
                message = "KKT conditions satisfied"
                if trace is not None:
                    _emit("converged", 0.0, 0)
                break
            # §IV-D strategy: release every active constraint whose
            # multiplier is negative and recompute the projection.
            active.release(np.concatenate([neg_lower, neg_upper]))
            releases += 1
            prev_projected = None
            prev_direction = None
            if trace is not None:
                _emit("release", 0.0, 0)
            continue

        direction = projected
        newton_used = False
        if use_newton:
            newton = _newton_direction(objective, active, x, g)
            if newton is not None:
                direction = newton
                newton_used = True

        # Polak-Ribière blending of successive directions (§IV-D).
        if (
            not newton_used
            and options.polak_ribiere
            and prev_projected is not None
            and prev_direction is not None
        ):
            denom = float(prev_projected @ prev_projected)
            if denom > 0:
                beta = float(projected @ (projected - prev_projected)) / denom
                if beta > 0:
                    blended = projected + beta * prev_direction
                    # Keep only ascent directions inside the null space.
                    blended = active.project(blended)
                    if float(blended @ g) > 0:
                        direction = blended

        t_max, blocking = active.max_step(x, direction)
        if t_max <= 0.0:
            # Numerically pinned against a bound not yet marked active.
            for index in blocking:
                _activate_blocking(active, x, direction, int(index))
            prev_projected = None
            prev_direction = None
            if trace is not None:
                _emit("pinned", 0.0, 0)
            continue

        # ρ₀ was just computed for the gradient, so building the ray
        # costs one extra matvec (δ = R s); each trial is then O(K).
        if options.incremental_ray:
            ray = objective.along_ray(x, direction)
        else:
            ray = Objective.along_ray(objective, x, direction)
        result = line_search_along_ray(
            ray,
            t_max,
            method=options.line_search,
            tolerance=options.line_search_tolerance,
        )
        if result.step == 0.0 and not result.hit_boundary:
            # The line search found no resolvable progress along an
            # ascent direction: the iterate is stationary to machine
            # precision even though the projected-gradient test hasn't
            # tripped (its tolerance can sit below the attainable
            # floor).  Decide exactly like the stationary branch — the
            # final KKT certificate still judges independently.
            line_search_evaluations += result.newton_iterations
            mult = active.multipliers(g)
            release_tol = options.tolerance * scale
            neg_lower = mult.negative_lower(release_tol)
            neg_upper = mult.negative_upper(release_tol)
            if neg_lower.size == 0 and neg_upper.size == 0:
                converged = True
                message = "stationary at line-search resolution"
                if trace is not None:
                    _emit("converged", 0.0, result.newton_iterations)
                break
            active.release(np.concatenate([neg_lower, neg_upper]))
            releases += 1
            prev_projected = None
            prev_direction = None
            if trace is not None:
                _emit("release", 0.0, result.newton_iterations)
            continue
        x = x + result.step * direction
        np.clip(x, 0.0, alpha, out=x)
        _restore_capacity(x, active, loads, problem.theta_rate_pps)
        line_search_evaluations += result.newton_iterations

        if result.hit_boundary:
            for index in blocking:
                _activate_blocking(active, x, direction, int(index))
            prev_projected = None
            prev_direction = None
        elif newton_used:
            # Newton steps carry no useful conjugacy memory — blending
            # the next projected gradient with a second-order step
            # would corrupt the Polak-Ribière recurrence.
            prev_projected = None
            prev_direction = None
        else:
            prev_projected = projected
            prev_direction = direction

        if trace is not None:
            _emit("step", result.step, result.newton_iterations)

    if not converged:
        message = (
            f"wall-clock limit {options.wall_clock_limit_s:g}s exceeded "
            f"after {iterations} iterations"
            if timed_out
            else f"aborted after {iterations} iterations"
        )

    rates = np.zeros(problem.num_links)
    rates[cand] = x
    rates[problem.free_saturated_mask] = problem.alpha[problem.free_saturated_mask]

    # At convergence the loop's last gradient was evaluated at the
    # final x, and rates[cand] == x exactly — hand both to the KKT
    # check so it certifies without recomputing ρ or ∇f.
    kkt = (
        check_kkt(
            problem,
            rates,
            tolerance=options.kkt_tolerance,
            objective=objective,
            gradient=g,
        )
        if converged
        else None
    )
    wall_time_s = perf_counter() - t_start
    diagnostics = SolverDiagnostics(
        method="gradient_projection",
        iterations=iterations,
        constraint_releases=releases,
        converged=converged,
        objective_value=objective.value(x),
        kkt=kkt,
        message=message,
        wall_time_s=wall_time_s,
        line_search_evaluations=line_search_evaluations,
    )
    METRICS.increment("solver.gp.solves")
    METRICS.increment("solver.gp.iterations", iterations)
    METRICS.observe_timer("solver.gp.wall_time", wall_time_s)
    METRICS.observe_histogram("solver.gp.solve_seconds", wall_time_s)
    if warm_start is not None:
        # Iteration *count* through the histogram machinery: the
        # streaming control plane's convergence claim is a p95 over
        # warm-started solves, and the bucket bounds (1, 2.2, 5, ...)
        # resolve single-digit counts well enough to assert p95 <= 5.
        METRICS.observe_histogram("solver.gp.warm_iterations", float(iterations))
    if spans_active():
        # Post-hoc leaf span: the solve produced no child spans, so
        # recording after the fact keeps the hot loop untouched while
        # still parenting under whatever span was open around us.
        record_span(
            "solver.gp",
            duration_s=wall_time_s,
            iterations=iterations,
            converged=converged,
            links=problem.num_links,
        )
    if trace is not None:
        trace.end_solve(
            iterations=iterations,
            constraint_releases=releases,
            converged=converged,
            objective_value=diagnostics.objective_value,
            wall_time_s=wall_time_s,
            line_search_evaluations=line_search_evaluations,
            message=message,
        )
    return SamplingSolution(problem=problem, rates=rates, diagnostics=diagnostics)


def _project_to_feasible(
    x: np.ndarray, loads: np.ndarray, alpha: np.ndarray, target_rate: float
) -> np.ndarray:
    """Project a warm-start point onto ``{x·u = θ', 0 <= x <= α}``.

    Clip to the box, then rescale toward the capacity plane and repair
    residual drift with water-filling on the slack.  Cheap rather than
    an exact Euclidean projection — the solver only needs a feasible
    start near the previous optimum.
    """
    x = np.clip(x, 0.0, alpha)
    if float(x @ loads) <= 0:
        return initial_feasible_point(loads, alpha, target_rate)
    # Iterated rescale-and-clip converges geometrically: scaling is
    # exact when nothing clips, and each clip only leaves a shrinking
    # deficit to spread over the unclipped coordinates.
    tiny = 1e-12 * max(target_rate, 1.0)
    for _ in range(200):
        used = float(x @ loads)
        if abs(used - target_rate) <= tiny:
            return x
        if used <= tiny:
            # Scaling from a near-zero point is numerically unstable.
            break
        x = np.clip(x * (target_rate / used), 0.0, alpha)
    return initial_feasible_point(loads, alpha, target_rate)


#: Hard cap on the free-subspace dimension of the reduced-Newton
#: direction: beyond this the dense block factorization (O(K³)) stops
#: paying for itself and the loop falls back to the projected gradient.
_NEWTON_MAX_FREE = 512


def _newton_direction(
    objective: Objective,
    active: ActiveSet,
    x: np.ndarray,
    g: np.ndarray,
) -> np.ndarray | None:
    """Reduced-Newton ascent direction on the current active set.

    Restricted to the free coordinates ``F`` the problem is a smooth
    equality-constrained concave program over ``{d : u_F · d = 0}``;
    its Newton step solves ``H d = ν u_F − g_F`` with the reduced
    Hessian ``H = R_Fᵀ diag(w ∘ M''(ρ)) R_F`` (plus any diagonal shift
    a penalized objective declares) and the multiplier ``ν`` chosen so
    the step stays on the capacity plane.  Consecutive streaming
    intervals keep the same active set almost always, so a warm solve
    reduces to this subspace problem and converges quadratically.

    ``d`` is always an ascent direction: with ``M = −H⁻¹ ≻ 0``,
    ``dᵀg = gᵀMg − (u_FᵀMg)²/(u_FᵀMu_F) ≥ 0`` by Cauchy-Schwarz in the
    M-inner product, with equality only at stationarity.  Returns
    ``None`` when the free block is empty or too large, or the system
    is numerically unusable — the caller falls back to the first-order
    direction, so correctness never depends on this path.
    """
    free_idx = np.flatnonzero(active.free_mask)
    k = int(free_idx.size)
    if k == 0 or k > _NEWTON_MAX_FREE:
        return None
    routing = getattr(objective, "routing_operator", None)
    if routing is None:
        return None
    restricted = routing.restrict_columns(free_idx).toarray()
    hess_weights = objective.curvature_weights(x)
    hessian = restricted.T @ (hess_weights[:, None] * restricted)
    # Concavity gives H ⪯ 0 but not full rank — more free links than OD
    # pairs leaves a null space — so a relative Tikhonov term keeps the
    # factorization definite without meaningfully disturbing the step.
    diag = np.abs(np.diagonal(hessian))
    regularizer = 1e-10 * max(1.0, float(diag.max()) if k else 1.0)
    shift = float(getattr(objective, "hessian_diagonal_shift", 0.0))
    hessian[np.diag_indices_from(hessian)] += shift - regularizer
    u_free = active.loads[free_idx]
    try:
        solved = np.linalg.solve(
            hessian, np.column_stack((g[free_idx], u_free))
        )
    except np.linalg.LinAlgError:
        return None
    if not np.all(np.isfinite(solved)):
        return None
    h_inv_g, h_inv_u = solved[:, 0], solved[:, 1]
    denom = float(u_free @ h_inv_u)
    if denom == 0.0:
        return None
    nu = float(u_free @ h_inv_g) / denom
    direction = np.zeros_like(x)
    direction[free_idx] = nu * h_inv_u - h_inv_g
    if not float(direction @ g) > 0.0:
        return None
    return direction


def _activate_blocking(
    active: ActiveSet, x: np.ndarray, direction: np.ndarray, index: int
) -> None:
    """Pin coordinate ``index`` to the bound its direction pushed into."""
    if direction[index] < 0:
        x[index] = 0.0
        active.activate_lower(index)
    elif direction[index] > 0:
        x[index] = active.alpha[index]
        active.activate_upper(index)


def _restore_capacity(
    x: np.ndarray, active: ActiveSet, loads: np.ndarray, target_rate: float
) -> None:
    """Remove capacity-equality drift caused by clipping/roundoff.

    Shifts the free coordinates along the load direction — the minimal-
    norm correction — so ``x·u`` returns to the target exactly.
    """
    drift = float(x @ loads) - target_rate
    if drift == 0.0:
        return
    free = active.free_mask
    u_free = np.where(free, loads, 0.0)
    norm2 = float(u_free @ u_free)
    if norm2 <= 0:
        return
    x -= (drift / norm2) * u_free
    np.clip(x, 0.0, active.alpha, out=x)
