"""Robust placement: one configuration for a *set* of scenarios.

The re-optimization machinery (``repro.adaptive``) answers traffic
variation by re-solving; sometimes operators instead want a single
configuration that remains adequate across a scenario set — the day
and night matrices, or the nominal topology and its most likely
failure.  This module builds that robust problem from several
:class:`~repro.traffic.workloads.MeasurementTask` snapshots over the
same base network:

* **rates** are indexed by the base network's links;
* each scenario contributes its own routing block (scenario link
  columns are aligned to base links *by name*, so failure scenarios —
  which lack some links — are supported) and its own per-OD utilities;
* the **capacity constraint prices the element-wise maximum load**
  across scenarios, so the budget holds no matter which scenario
  materializes;
* the objective is either the scenario-weighted mean of utilities or
  a soft-min across every (scenario, OD) pair (worst-case flavour).

The result is still a concave problem over a polytope, so the same
solver and KKT certificate apply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .gradient_projection import GradientProjectionOptions, solve_gradient_projection
from .objective import SoftMinUtilityObjective, SumUtilityObjective
from .problem import SamplingProblem
from .solution import SamplingSolution
from .utility import accuracy_utilities

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..topology.graph import Network
    from ..traffic.workloads import MeasurementTask

__all__ = ["RobustProblem", "build_robust_problem", "solve_robust"]


@dataclass(frozen=True)
class RobustProblem:
    """A multi-scenario problem plus its bookkeeping.

    ``problem.routing`` stacks one ``F x L`` block per scenario
    (aligned to the base network's links); ``scenario_of_row`` maps
    each stacked row back to its scenario index.
    """

    problem: SamplingProblem
    num_scenarios: int
    num_od_pairs: int
    scenario_weights: np.ndarray

    @property
    def scenario_of_row(self) -> np.ndarray:
        return np.repeat(np.arange(self.num_scenarios), self.num_od_pairs)

    def per_scenario_utilities(self, solution: SamplingSolution) -> np.ndarray:
        """``(scenarios x F)`` utility matrix at a solution."""
        return solution.od_utilities.reshape(
            self.num_scenarios, self.num_od_pairs
        )


def _align_to_base(
    base: "Network", task: "MeasurementTask"
) -> tuple[np.ndarray, np.ndarray]:
    """Scenario routing columns and loads re-indexed to base links."""
    routing = np.zeros((task.num_od_pairs, base.num_links))
    loads = np.zeros(base.num_links)
    for link in task.network.links:
        if not base.has_link(link.src, link.dst):
            raise ValueError(
                f"scenario link {link.name} does not exist in the base network"
            )
        column = base.link_between(link.src, link.dst).index
        routing[:, column] = task.routing.matrix[:, link.index]
        loads[column] = task.link_loads_pps[link.index]
    return routing, loads


def build_robust_problem(
    base_network: "Network",
    scenarios: Sequence["MeasurementTask"],
    theta_packets: float,
    alpha: float | np.ndarray = 1.0,
    scenario_weights: Sequence[float] | None = None,
) -> RobustProblem:
    """Assemble the stacked multi-scenario problem.

    All scenarios must share the base network's OD-pair list (same
    order) and their links must be a subset of the base links (failure
    scenarios qualify).  The budget constraint uses per-link
    element-wise maximum loads over the scenarios.
    """
    if not scenarios:
        raise ValueError("need at least one scenario")
    num_od = scenarios[0].num_od_pairs
    for task in scenarios:
        if task.num_od_pairs != num_od:
            raise ValueError("scenarios disagree on the OD-pair count")
        if [od.name for od in task.routing.od_pairs] != [
            od.name for od in scenarios[0].routing.od_pairs
        ]:
            raise ValueError("scenarios disagree on the OD-pair list")

    if scenario_weights is None:
        weights = np.full(len(scenarios), 1.0 / len(scenarios))
    else:
        weights = np.asarray(scenario_weights, dtype=float)
        if weights.shape != (len(scenarios),):
            raise ValueError("scenario weights do not match scenario count")
        if np.any(weights <= 0):
            raise ValueError("scenario weights must be positive")
        weights = weights / weights.sum()

    blocks = []
    worst_loads = np.zeros(base_network.num_links)
    utilities = []
    for task in scenarios:
        routing, loads = _align_to_base(base_network, task)
        blocks.append(routing)
        worst_loads = np.maximum(worst_loads, loads)
        utilities.extend(accuracy_utilities(task.mean_inverse_sizes))

    problem = SamplingProblem(
        np.vstack(blocks),
        worst_loads,
        theta_packets,
        utilities,
        alpha=alpha,
        interval_seconds=scenarios[0].interval_seconds,
    )
    return RobustProblem(
        problem=problem,
        num_scenarios=len(scenarios),
        num_od_pairs=num_od,
        scenario_weights=weights,
    )


def solve_robust(
    robust: RobustProblem,
    objective: str = "mean",
    temperature: float = 0.005,
    options: GradientProjectionOptions | None = None,
) -> SamplingSolution:
    """Solve a robust problem.

    ``objective``:

    * ``"mean"`` — scenario-weighted average utility (each stacked row
      weighted by its scenario's probability);
    * ``"worst-case"`` — smooth soft-min across every (scenario, OD)
      utility, maximizing the worst corner of the scenario set.
    """
    problem = robust.problem
    routing = problem.candidate_routing_op()
    if objective == "mean":
        row_weights = np.repeat(robust.scenario_weights, robust.num_od_pairs)
        built = SumUtilityObjective(routing, problem.utilities, weights=row_weights)
    elif objective == "worst-case":
        built = SoftMinUtilityObjective(
            routing, problem.utilities, temperature=temperature
        )
    else:
        raise ValueError("objective must be 'mean' or 'worst-case'")
    return solve_gradient_projection(problem, options=options, objective=built)
