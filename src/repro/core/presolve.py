"""Exact presolve: shrink the problem before any solve touches it.

Families of solves (θ sweeps, per-interval re-optimization, failure
scenarios) repeatedly pay for structure that the optimum provably
ignores.  Three reductions are exact under the paper's linear
effective-rate model ``ρ_k = Σ_i r_{k,i} p_i`` (§IV-B):

1. **Link elimination.**  Links outside the candidate set — not
   monitorable, traversed by no OD pair, zero load, or ``α_i = 0`` —
   never carry positive sampling at an optimum (non-traversed links
   add no utility but consume budget; the zero-load "free saturated"
   links are handled by a closed-form pre-pass).  They are removed
   from the decision space outright.

2. **Duplicate-column merge.**  Two candidate links with *identical*
   routing columns and *identical* loads are interchangeable: only the
   sum ``q = Σ_{i∈G} p_i`` enters every ρ_k (identical columns) and
   the capacity constraint (identical loads ``U``, so
   ``Σ_{i∈G} p_i U_i = U·q``).  The group collapses into one aggregate
   variable with bound ``Σ_{i∈G} α_i``, and any split of ``q``
   respecting the member bounds lifts back to a full-space optimum —
   we use the proportional split ``p_i = q·α_i/Σα_G``, which always
   respects them.  Equal loads are required for exactness: with
   unequal loads the budget cost of ``q`` would depend on the split,
   so the merged problem would mis-price capacity.

3. **Row dropping.**  OD rows with no surviving candidate link have
   ``ρ_k = 0`` for every feasible point; their constant utility
   ``M_k(0)`` (zero for all conforming utilities) is carried as an
   objective offset instead of being re-evaluated each iteration.

A fourth structural check detects the *bound-forced* case
``θ/T = Σ α_i U_i``: the feasible set is then the single point
``p = α`` on candidates, which :func:`ReducedProblem.forced_solution`
returns without running a solver.

The merged problem's aggregate bounds can exceed 1, so the reduced
:class:`~repro.core.problem.SamplingProblem` is built with
``alpha_ceiling=None``; the solver mathematics is bound-agnostic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import METRICS
from .problem import InfeasibleProblemError, SamplingProblem
from .solution import SamplingSolution

__all__ = ["PresolveStats", "ReducedProblem", "presolve"]


@dataclass(frozen=True)
class PresolveStats:
    """What a presolve pass removed, merged and kept.

    Attributes
    ----------
    original_links / original_od_pairs:
        Dimensions of the problem handed to :func:`presolve`.
    candidate_links:
        Links the solver would have optimized over anyway.
    links_eliminated:
        Non-candidate links removed from the decision space.
    links_merged:
        Candidate links absorbed into aggregate variables,
        ``Σ_G (|G| - 1)`` over duplicate groups.
    merge_groups:
        Number of groups with more than one member.
    rows_dropped:
        OD rows with no surviving candidate link.
    reduced_links / reduced_od_pairs:
        Dimensions of the reduced problem.
    forced_saturated:
        True when ``θ/T`` equals the maximum absorbable rate, pinning
        every candidate at its bound.
    identity:
        True when nothing reduced: the original problem is reused
        untouched and ``lift`` is the identity.
    """

    original_links: int
    original_od_pairs: int
    candidate_links: int
    links_eliminated: int
    links_merged: int
    merge_groups: int
    rows_dropped: int
    reduced_links: int
    reduced_od_pairs: int
    forced_saturated: bool
    identity: bool


class ReducedProblem:
    """A presolved problem plus the lift map back to full space.

    Instances come from :func:`presolve` (or
    :meth:`SamplingProblem.presolve`).  ``problem`` is the reduced
    :class:`SamplingProblem` to hand to any solver; :meth:`lift`
    converts its solution into a full-space one on the original
    problem with the identical objective value.
    """

    def __init__(
        self,
        original: SamplingProblem,
        problem: SamplingProblem,
        stats: PresolveStats,
        member_links: np.ndarray,
        member_col: np.ndarray,
        member_frac: np.ndarray,
        objective_offset: float,
    ) -> None:
        self.original = original
        self.problem = problem
        self.stats = stats
        # Flat lift tables: for every original candidate link,
        # which reduced column it belongs to and what fraction of the
        # aggregate value it receives (α_i / Σ α_G).
        self._member_links = member_links
        self._member_col = member_col
        self._member_frac = member_frac
        self.objective_offset = float(objective_offset)

    # ------------------------------------------------------------------
    @property
    def identity(self) -> bool:
        """True when the pass reduced nothing and ``problem is original``."""
        return self.stats.identity

    def with_theta(self, theta_packets: float) -> "ReducedProblem":
        """This reduction re-targeted at a different capacity θ.

        Every reduction rule is θ-independent (candidate sets, column
        groups and row coverage never mention θ), so a capacity sweep
        reduces the topology once and re-uses the lift tables for all
        points; only the forced-saturation flag is re-evaluated.
        """
        original = self.original.with_theta(float(theta_packets))
        reduced = (
            original if self.identity
            else self.problem.with_theta(float(theta_packets))
        )
        absorbable = original.max_absorbable_rate
        forced = (
            abs(original.theta_rate_pps - absorbable)
            <= 1e-12 * max(absorbable, 1.0)
        )
        stats = dataclasses.replace(self.stats, forced_saturated=forced)
        return ReducedProblem(
            original=original,
            problem=reduced,
            stats=stats,
            member_links=self._member_links,
            member_col=self._member_col,
            member_frac=self._member_frac,
            objective_offset=self.objective_offset,
        )

    def lift_rates(self, reduced_rates: np.ndarray) -> np.ndarray:
        """Full-length rate vector from a reduced-space one.

        Aggregate values split proportionally to member bounds
        (``p_i = q·α_i/Σα_G``), free-saturated links sit at ``α_i``,
        everything else at zero — exactly the structure of a
        full-space optimum.
        """
        reduced_rates = np.asarray(reduced_rates, dtype=float)
        if self.identity:
            return reduced_rates.copy()
        expected = self.problem.num_links
        if reduced_rates.shape != (expected,):
            raise ValueError(
                f"reduced rates have shape {reduced_rates.shape}, "
                f"expected ({expected},)"
            )
        full = np.zeros(self.original.num_links)
        free = self.original.free_saturated_mask
        full[free] = self.original.alpha[free]
        full[self._member_links] = (
            reduced_rates[self._member_col] * self._member_frac
        )
        return full

    def restrict_rates(self, full_rates: np.ndarray) -> np.ndarray:
        """Reduced-space vector from a full-length one (group sums).

        The adjoint of :meth:`lift_rates` on the aggregate variables —
        used to carry warm starts across the reduction boundary.
        """
        full_rates = np.asarray(full_rates, dtype=float)
        if self.identity:
            return full_rates.copy()
        if full_rates.shape != (self.original.num_links,):
            raise ValueError(
                f"full rates have shape {full_rates.shape}, expected "
                f"({self.original.num_links},)"
            )
        reduced = np.zeros(self.problem.num_links)
        np.add.at(reduced, self._member_col, full_rates[self._member_links])
        return reduced

    def lift(
        self, solution: SamplingSolution, kkt_tolerance: float | None = None
    ) -> SamplingSolution:
        """Full-space solution from a reduced-space one.

        The diagnostics carry over with the objective value adjusted by
        the dropped-row offset (zero for conforming utilities, which
        have ``M(0) = 0``).  When ``kkt_tolerance`` is given and the
        reduced solve certified its iterate, the lifted point is
        re-certified against the *original* problem so the certificate
        refers to the space the caller holds.
        """
        if solution.problem is not self.problem:
            raise ValueError("solution does not belong to this reduced problem")
        if self.identity:
            return solution
        rates = self.lift_rates(solution.rates)
        diagnostics = solution.diagnostics
        if self.objective_offset:
            diagnostics = dataclasses.replace(
                diagnostics,
                objective_value=diagnostics.objective_value + self.objective_offset,
            )
        if kkt_tolerance is not None and diagnostics.kkt is not None:
            from .kkt import check_kkt

            diagnostics = dataclasses.replace(
                diagnostics,
                kkt=check_kkt(self.original, rates, tolerance=kkt_tolerance),
            )
        return SamplingSolution(
            problem=self.original, rates=rates, diagnostics=diagnostics
        )

    def forced_solution(self) -> SamplingSolution | None:
        """The unique feasible point when θ pins every bound, else None.

        When ``θ/T`` equals ``Σ α_i U_i`` over candidates the equality
        constraint admits exactly one point — all candidates saturated —
        so no iteration is needed.
        """
        if not self.stats.forced_saturated:
            return None
        from .objective import SumUtilityObjective
        from .solution import SolverDiagnostics

        original = self.original
        rates = np.zeros(original.num_links)
        cand = original.candidate_mask
        free = original.free_saturated_mask
        rates[cand] = original.alpha[cand]
        rates[free] = original.alpha[free]
        objective = SumUtilityObjective(
            original.candidate_routing_op(), original.utilities
        )
        value = float(objective.value(original.alpha[cand]))
        from .kkt import check_kkt

        diagnostics = SolverDiagnostics(
            method="presolve",
            iterations=0,
            constraint_releases=0,
            converged=True,
            objective_value=value,
            kkt=check_kkt(original, rates, objective=objective),
            message="bound-forced: theta saturates every candidate bound",
            wall_time_s=0.0,
            line_search_evaluations=0,
        )
        return SamplingSolution(
            problem=original, rates=rates, diagnostics=diagnostics
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats
        return (
            f"ReducedProblem({s.original_links}->{s.reduced_links} links, "
            f"{s.original_od_pairs}->{s.reduced_od_pairs} rows, "
            f"merged={s.links_merged}, identity={s.identity})"
        )


def _candidate_column_keys(problem: SamplingProblem, cand: np.ndarray):
    """Byte-exact (column, load) keys for duplicate-group detection.

    Merging is exact only for *identical* columns and *identical*
    loads, so the keys hash raw bytes — no tolerance, no false merges.
    """
    op = problem.candidate_routing_op()
    loads = problem.link_loads_pps[cand]
    csr = op.tosparse()
    keys = []
    if csr is not None:
        csc = csr.tocsc()
        csc.sort_indices()
        indptr = csc.indptr
        for j in range(len(cand)):
            lo, hi = indptr[j], indptr[j + 1]
            keys.append(
                (
                    csc.indices[lo:hi].tobytes(),
                    csc.data[lo:hi].tobytes(),
                    float(loads[j]),
                )
            )
    else:
        dense = np.asfortranarray(op.toarray())
        for j in range(len(cand)):
            keys.append((dense[:, j].tobytes(), float(loads[j])))
    return keys


def presolve(problem: SamplingProblem) -> ReducedProblem:
    """Reduce ``problem`` exactly; see the module docstring for the rules.

    Raises :class:`InfeasibleProblemError` when there is no candidate
    link at all (the reduced problem would be empty — the full-space
    solver would reject the same instance).
    """
    METRICS.increment("presolve.runs")
    num_links = problem.num_links
    num_rows = problem.num_od_pairs
    cand = np.flatnonzero(problem.candidate_mask)
    if cand.size == 0:
        raise InfeasibleProblemError(
            "no candidate links: nothing monitorable carries task traffic"
        )

    # -- duplicate-column groups over candidates -----------------------
    groups: dict[object, list[int]] = {}
    for position, key in enumerate(_candidate_column_keys(problem, cand)):
        groups.setdefault(key, []).append(position)
    group_positions = list(groups.values())  # insertion-ordered: first-seen
    representatives = np.array([g[0] for g in group_positions], dtype=int)
    merge_groups = sum(1 for g in group_positions if len(g) > 1)
    links_merged = sum(len(g) - 1 for g in group_positions)

    # -- surviving OD rows ---------------------------------------------
    cand_op = problem.candidate_routing_op()
    row_coverage = cand_op.matvec(np.ones(cand.size))
    kept_rows = np.flatnonzero(row_coverage > 0)
    rows_dropped = num_rows - kept_rows.size

    links_eliminated = num_links - cand.size
    absorbable = problem.max_absorbable_rate
    forced = (
        abs(problem.theta_rate_pps - absorbable)
        <= 1e-12 * max(absorbable, 1.0)
    )

    identity = (
        links_eliminated == 0 and links_merged == 0 and rows_dropped == 0
    )
    stats = PresolveStats(
        original_links=num_links,
        original_od_pairs=num_rows,
        candidate_links=int(cand.size),
        links_eliminated=int(links_eliminated),
        links_merged=int(links_merged),
        merge_groups=int(merge_groups),
        rows_dropped=int(rows_dropped),
        reduced_links=int(num_links if identity else representatives.size),
        reduced_od_pairs=int(num_rows if identity else kept_rows.size),
        forced_saturated=bool(forced),
        identity=bool(identity),
    )
    METRICS.increment("presolve.links_eliminated", int(links_eliminated))
    METRICS.increment("presolve.links_merged", int(links_merged))
    METRICS.increment("presolve.rows_dropped", int(rows_dropped))
    if forced:
        METRICS.increment("presolve.forced")
    if identity:
        METRICS.increment("presolve.identity")
        empty = np.empty(0, dtype=int)
        return ReducedProblem(
            original=problem,
            problem=problem,
            stats=stats,
            member_links=empty,
            member_col=empty,
            member_frac=np.empty(0),
            objective_offset=0.0,
        )

    # -- reduced routing: representative columns, surviving rows -------
    csr = cand_op.tosparse()
    if csr is not None:
        reduced_routing = csr.tocsc()[:, representatives].tocsr()[kept_rows]
    else:
        reduced_routing = cand_op.toarray()[np.ix_(kept_rows, representatives)]

    # -- merged loads and bounds ---------------------------------------
    alpha_cand = problem.alpha[cand]
    loads_cand = problem.link_loads_pps[cand]
    reduced_alpha = np.array(
        [float(alpha_cand[g].sum()) for g in group_positions]
    )
    reduced_loads = loads_cand[representatives]  # identical within a group

    reduced_utilities = [problem.utilities[k] for k in kept_rows]
    # M(0) = 0 by the UtilityFunction contract, but custom utilities may
    # deviate; carry the exact constant so lift() preserves objectives.
    dropped = np.setdiff1d(np.arange(num_rows), kept_rows, assume_unique=True)
    objective_offset = float(
        sum(float(problem.utilities[k].value(0.0)) for k in dropped)
    )

    reduced = SamplingProblem(
        reduced_routing,
        reduced_loads,
        problem.theta_packets,
        reduced_utilities,
        alpha=reduced_alpha,
        interval_seconds=problem.interval_seconds,
        alpha_ceiling=None,
    )

    # -- lift tables ----------------------------------------------------
    member_links = np.concatenate(
        [cand[np.asarray(g, dtype=int)] for g in group_positions]
    )
    member_col = np.concatenate(
        [np.full(len(g), col, dtype=int) for col, g in enumerate(group_positions)]
    )
    fracs = []
    for col, g in enumerate(group_positions):
        total = reduced_alpha[col]
        group_alpha = alpha_cand[np.asarray(g, dtype=int)]
        fracs.append(group_alpha / total if total > 0 else group_alpha * 0.0)
    member_frac = np.concatenate(fracs)

    return ReducedProblem(
        original=problem,
        problem=reduced,
        stats=stats,
        member_links=member_links,
        member_col=member_col,
        member_frac=member_frac,
        objective_offset=objective_offset,
    )
