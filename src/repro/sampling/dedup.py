"""Collector-side packet deduplication.

The effective-sampling-rate definition (§III) "assumes that we have
means to discern whether the same packet is sampled at multiple
locations in the network".  Operationally this is done by digesting
invariant packet content (trajectory sampling); here, where packets
are synthetic, a packet's identity is ``(flow_id, sequence_number)``
and the digest is a salted 64-bit mix of the two.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["packet_digest", "PacketDeduplicator"]

_MASK = (1 << 64) - 1
# SplitMix64 constants: a well-mixed, dependency-free 64-bit finalizer.
_GAMMA = 0x9E3779B97F4A7C15


def packet_digest(flow_id: int, sequence: int, salt: int = 0) -> int:
    """Deterministic 64-bit digest of a packet's identity."""
    z = (flow_id * _GAMMA + sequence + salt * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK


class PacketDeduplicator:
    """Streams packet detections, passing each distinct packet once.

    Memory grows with the number of *distinct* sampled packets, which
    the capacity constraint bounds by θ per interval — the reason the
    paper can afford exact dedup at the collector.
    """

    def __init__(self, salt: int = 0) -> None:
        self._salt = salt
        self._seen: set[int] = set()

    @property
    def distinct_packets(self) -> int:
        return len(self._seen)

    def is_duplicate(self, flow_id: int, sequence: int) -> bool:
        """Record a detection; True when this packet was already seen."""
        digest = packet_digest(flow_id, sequence, self._salt)
        if digest in self._seen:
            return True
        self._seen.add(digest)
        return False

    def filter(
        self, detections: Iterable[tuple[int, int]]
    ) -> Iterator[tuple[int, int]]:
        """Yield each distinct ``(flow_id, sequence)`` detection once."""
        for flow_id, sequence in detections:
            if not self.is_duplicate(flow_id, sequence):
                yield (flow_id, sequence)

    def reset(self) -> None:
        """Forget all seen packets (new measurement interval)."""
        self._seen.clear()
