"""Inverting flow statistics from sampled flow records.

The paper's related work (§II, refs [12][13]: Duffield, Lund, Thorup)
studies how to recover traffic properties from *sampled* NetFlow
records — the exact post-processing GEANT's 1/1000 feed needs before
the paper can treat it as ground truth.  This module implements the
classic estimators for i.i.d. packet sampling at rate ``p``:

* **total packets**: ``X̂ = X_sampled / p`` (Horvitz-Thompson);
* **flow count**: a flow of size ``s`` is detected with probability
  ``1 - (1-p)^s``, so the detected-flow count is biased against small
  flows.  Two repairs, mirroring [12][13]:

  - the *unique* distribution-free unbiased estimator
    ``N̂ = Σ_records [1 - (-(1-p)/p)^{j}]`` (``j`` = sampled packets of
    the record), which exists but whose alternating weights make its
    variance explode for ``p < 1/2`` — the classic negative result
    motivating the next item;
  - the *SYN-based* estimator ``N̂ = (#sampled flow-initial packets)/p``
    — unbiased with small variance whenever the flow's first packet is
    identifiable (TCP SYN), which is DLT's practical recommendation.
* **size-distribution inversion**: the sampled-size distribution is a
  binomial mixture of the original one; for bounded sizes the mixing
  matrix can be inverted (regularized least squares on the simplex).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import optimize, stats

__all__ = [
    "detection_probability",
    "estimate_total_packets",
    "FlowCountEstimate",
    "estimate_flow_count_unbiased",
    "estimate_flow_count_syn",
    "invert_size_distribution",
]


def detection_probability(size_packets, sampling_rate: float):
    """``P(flow of s packets leaves a record) = 1 - (1-p)^s``."""
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError("sampling rate must be in (0, 1]")
    size = np.asarray(size_packets, dtype=float)
    if np.any(size < 0):
        raise ValueError("sizes must be non-negative")
    result = -np.expm1(size * np.log1p(-min(sampling_rate, 1 - 1e-15)))
    return result if result.ndim else float(result)


def estimate_total_packets(sampled_packets: float, sampling_rate: float) -> float:
    """Horvitz-Thompson inversion of the total packet count."""
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError("sampling rate must be in (0, 1]")
    if sampled_packets < 0:
        raise ValueError("sampled packets must be non-negative")
    return sampled_packets / sampling_rate


@dataclass(frozen=True)
class FlowCountEstimate:
    """A flow-count estimate with its inputs."""

    estimate: float
    detected_flows: int
    sampling_rate: float
    method: str


def estimate_flow_count_unbiased(
    sampled_sizes: Iterable[int] | np.ndarray, sampling_rate: float
) -> FlowCountEstimate:
    """The unique distribution-free unbiased flow-count estimator.

    Each record with ``j`` sampled packets contributes the weight
    ``f(j) = 1 - (-(1-p)/p)^j``; summing ``P(Bin(s,p) = j) f(j)`` over
    ``j >= 1`` telescopes to exactly 1 for every original size ``s``,
    so the sum over records is unbiased for the number of flows — for
    *any* size distribution.

    The price is variance: for ``p < 1/2`` the weights alternate with
    geometrically growing magnitude ``((1-p)/p)^j``, so the estimator
    is only practical at high sampling rates.  This is the classic
    negative result of the sampled-flow-inversion literature ([12]);
    at router rates (``p ~ 1/1000``) use
    :func:`estimate_flow_count_syn` instead.
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError("sampling rate must be in (0, 1]")
    sizes = np.asarray(
        list(sampled_sizes)
        if not isinstance(sampled_sizes, np.ndarray)
        else sampled_sizes
    )
    if sizes.size and np.any(sizes < 1):
        raise ValueError("sampled record sizes are >= 1 by construction")
    ratio = -(1.0 - sampling_rate) / sampling_rate
    weights = 1.0 - np.power(ratio, sizes.astype(float)) if sizes.size else np.array([])
    return FlowCountEstimate(
        estimate=float(weights.sum()),
        detected_flows=int(sizes.size),
        sampling_rate=sampling_rate,
        method="unbiased-alternating",
    )


def estimate_flow_count_syn(
    sampled_first_packets: int, sampling_rate: float
) -> FlowCountEstimate:
    """SYN-based flow counting: ``N̂ = (#sampled first packets) / p``.

    Every flow has exactly one first packet (a TCP SYN, say); each is
    sampled independently with probability ``p``, so the inverted count
    is unbiased with binomial (small) variance regardless of the flow
    size distribution — DLT's practical estimator.
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError("sampling rate must be in (0, 1]")
    if sampled_first_packets < 0:
        raise ValueError("sampled first-packet count must be non-negative")
    return FlowCountEstimate(
        estimate=sampled_first_packets / sampling_rate,
        detected_flows=int(sampled_first_packets),
        sampling_rate=sampling_rate,
        method="syn",
    )


def invert_size_distribution(
    sampled_sizes: Sequence[int] | np.ndarray,
    sampling_rate: float,
    max_size: int,
) -> np.ndarray:
    """Recover the original flow-size distribution from sampled sizes.

    Solves the binomial mixture ``q_j = Σ_s π_s · P(Bin(s, p) = j | ≥1)``
    for the original distribution ``π`` on ``{1..max_size}`` by
    non-negative least squares, then normalizes.  Practical for small
    ``max_size`` (the classic hard inverse problem — see [12]); tests
    use well-separated mixtures where the inversion is stable.

    Returns the estimated probability vector over sizes ``1..max_size``.
    """
    if not 0.0 < sampling_rate <= 1.0:
        raise ValueError("sampling rate must be in (0, 1]")
    if max_size < 1:
        raise ValueError("max_size must be >= 1")
    sizes = np.asarray(sampled_sizes)
    if sizes.size == 0:
        raise ValueError("no sampled records")
    if np.any(sizes < 1):
        raise ValueError("sampled record sizes are >= 1 by construction")

    # Observed conditional distribution of sampled sizes (truncated at
    # max_size; larger sampled sizes imply larger originals anyway).
    observed = np.zeros(max_size)
    for j in sizes:
        observed[min(int(j), max_size) - 1] += 1
    observed /= observed.sum()

    # Mixing matrix A[j-1, s-1] = P(j sampled | original s, detected).
    mixing = np.zeros((max_size, max_size))
    for s in range(1, max_size + 1):
        detect = detection_probability(s, sampling_rate)
        if detect <= 0:
            continue
        pmf = stats.binom.pmf(np.arange(1, max_size + 1), s, sampling_rate)
        mixing[:, s - 1] = pmf / detect
    # Account for detection bias: detected flows over-represent large s.
    # q = A @ (w ∘ π) / (wᵀ π) with w_s = detection prob; solve for the
    # reweighted vector and unweight afterwards.
    solution, _ = optimize.nnls(mixing, observed)
    weights = detection_probability(np.arange(1, max_size + 1), sampling_rate)
    unweighted = np.where(weights > 0, solution / weights, 0.0)
    total = unweighted.sum()
    if total <= 0:
        raise ValueError("inversion degenerated; increase sample size")
    return unweighted / total
