"""Accuracy metrics (§V-B).

The paper validates its utility function with the *accuracy* of an OD
size estimate, defined as one minus the absolute relative error:

    accuracy = 1 - |x/ρ - s| / s

where ``s`` is the actual size, ``x`` the sampled size and ``ρ`` the
effective sampling rate of eq. (7) used for inversion.  The squared
relative error (eq. 9) underlies the utility function itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "absolute_relative_error",
    "accuracy",
    "squared_relative_error",
    "AccuracyStats",
    "summarize_accuracy",
]


def _validate(estimate, actual) -> tuple[np.ndarray, np.ndarray]:
    estimate = np.asarray(estimate, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if np.any(actual <= 0):
        raise ValueError("actual sizes must be positive")
    return estimate, actual


def absolute_relative_error(estimate, actual):
    """``|estimate - actual| / actual``."""
    estimate, actual = _validate(estimate, actual)
    result = np.abs(estimate - actual) / actual
    return result if result.ndim else float(result)


def accuracy(estimate, actual):
    """``1 - |estimate - actual| / actual`` (can go negative on misses)."""
    result = 1.0 - absolute_relative_error(estimate, actual)
    return result if isinstance(result, np.ndarray) else float(result)


def squared_relative_error(estimate, actual):
    """``((estimate - actual) / actual)²`` — the SRE of eq. (9)."""
    estimate, actual = _validate(estimate, actual)
    result = ((estimate - actual) / actual) ** 2
    return result if result.ndim else float(result)


@dataclass(frozen=True)
class AccuracyStats:
    """Accuracy of one OD pair over repeated sampling experiments."""

    mean: float
    std: float
    minimum: float
    maximum: float
    runs: int

    @classmethod
    def from_samples(cls, values: np.ndarray) -> "AccuracyStats":
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("no accuracy samples")
        return cls(
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            minimum=float(values.min()),
            maximum=float(values.max()),
            runs=int(values.size),
        )


def summarize_accuracy(estimates: np.ndarray, actual: np.ndarray) -> list[AccuracyStats]:
    """Per-OD stats from an ``(runs x F)`` estimate array.

    ``actual`` is the length-``F`` ground-truth size vector.
    """
    estimates = np.asarray(estimates, dtype=float)
    actual = np.asarray(actual, dtype=float)
    if estimates.ndim != 2 or estimates.shape[1] != actual.shape[0]:
        raise ValueError(
            f"estimates {estimates.shape} do not match {actual.shape[0]} OD pairs"
        )
    values = accuracy(estimates, actual[np.newaxis, :])
    return [AccuracyStats.from_samples(values[:, k]) for k in range(actual.shape[0])]
