"""Sampling evaluation: Monte-Carlo experiments, estimation, accuracy."""

from .accuracy import (
    AccuracyStats,
    absolute_relative_error,
    accuracy,
    squared_relative_error,
    summarize_accuracy,
)
from .dedup import PacketDeduplicator, packet_digest
from .estimator import SizeEstimate, estimate_size, estimate_sizes
from .flow_inversion import (
    FlowCountEstimate,
    detection_probability,
    estimate_flow_count_syn,
    estimate_flow_count_unbiased,
    estimate_total_packets,
    invert_size_distribution,
)
from .prediction import (
    predict_for_configuration,
    predicted_accuracy,
    predicted_relative_std,
    predicted_sre,
)
from .simulator import (
    ExperimentResult,
    SamplingExperiment,
    simulate_packet_level,
    simulate_sampled_counts,
)

__all__ = [
    "accuracy",
    "absolute_relative_error",
    "squared_relative_error",
    "AccuracyStats",
    "summarize_accuracy",
    "estimate_size",
    "estimate_sizes",
    "SizeEstimate",
    "SamplingExperiment",
    "ExperimentResult",
    "simulate_sampled_counts",
    "simulate_packet_level",
    "PacketDeduplicator",
    "packet_digest",
    "detection_probability",
    "estimate_total_packets",
    "estimate_flow_count_unbiased",
    "estimate_flow_count_syn",
    "FlowCountEstimate",
    "invert_size_distribution",
    "predicted_sre",
    "predicted_relative_std",
    "predicted_accuracy",
    "predict_for_configuration",
]
