"""Monte-Carlo sampling experiments (§V-B).

The paper evaluates a rate configuration by "simulating a random
sampling process on the flow records observed on link i using the
sampling rate p_i", running 20 such experiments and averaging the
accuracy.  This module reproduces that procedure at the packet-count
level: for each OD pair of ``S_k`` packets, each packet is sampled
independently at each traversed monitor, duplicate detections are
collapsed (the paper's dedup assumption), the sampled count is
inverted with the eq.-(7) effective rate, and accuracy is recorded.

Counts are drawn exactly (binomially) rather than by enumerating
packets; :func:`simulate_packet_level` provides a literal per-packet
simulator used in tests to validate the shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.effective_rate import exact_effective_rates, linear_effective_rates
from .accuracy import AccuracyStats, summarize_accuracy
from .estimator import estimate_sizes

__all__ = [
    "SamplingExperiment",
    "ExperimentResult",
    "simulate_sampled_counts",
    "simulate_packet_level",
]


def simulate_sampled_counts(
    routing: np.ndarray,
    od_sizes_packets: np.ndarray,
    rates: np.ndarray,
    rng: np.random.Generator,
    deduplicate: bool = True,
    mode: str = "independent",
) -> np.ndarray:
    """Draw one experiment's per-OD sampled packet counts.

    ``mode`` selects the cross-monitor sampling correlation:

    * ``"independent"`` (the paper's §III assumption) — each monitor
      flips its own coin per packet.  With ``deduplicate`` a packet
      counts once no matter how many monitors catch it:
      ``X_k ~ Bin(S_k, ρ_k^exact)``; without, every detection counts:
      ``X_k = Σ_i Bin(S_k, r_{k,i} p_i)``.
    * ``"trajectory"`` — monitors hash invariant packet content
      (trajectory sampling), so they all select the *same* packets and
      a packet is caught iff the **highest-rate** monitor on its path
      catches it: ``X_k ~ Bin(S_k, max_i r_{k,i} p_i)``.  Dedup is
      implied.  This ablates the independence assumption: trajectory
      sampling yields a strictly lower effective rate whenever two
      monitors observe the same OD pair.
    """
    routing = np.asarray(routing, dtype=float)
    sizes = np.asarray(od_sizes_packets)
    if sizes.shape != (routing.shape[0],):
        raise ValueError("od sizes do not match routing rows")
    if np.any(sizes < 0):
        raise ValueError("od sizes must be non-negative")
    sizes = np.rint(sizes).astype(np.int64)
    rates = np.asarray(rates, dtype=float)

    if mode == "trajectory":
        rho = (routing * rates[np.newaxis, :]).max(axis=1)
        return rng.binomial(sizes, np.clip(rho, 0.0, 1.0)).astype(float)
    if mode != "independent":
        raise ValueError("mode must be 'independent' or 'trajectory'")

    if deduplicate:
        rho = exact_effective_rates(routing, rates)
        return rng.binomial(sizes, np.clip(rho, 0.0, 1.0)).astype(float)

    counts = np.zeros(routing.shape[0])
    for i in np.flatnonzero(rates > 0):
        exposed = np.rint(routing[:, i] * sizes).astype(np.int64)
        counts += rng.binomial(exposed, rates[i])
    return counts


def simulate_packet_level(
    routing_row: np.ndarray,
    size_packets: int,
    rates: np.ndarray,
    rng: np.random.Generator,
    deduplicate: bool = True,
) -> int:
    """Literal per-packet, per-monitor Bernoulli simulation (one OD).

    O(S × monitors); used by tests to validate the binomial shortcut
    of :func:`simulate_sampled_counts`.
    """
    routing_row = np.asarray(routing_row, dtype=float)
    rates = np.asarray(rates, dtype=float)
    monitors = np.flatnonzero((routing_row > 0) & (rates > 0))
    if monitors.size == 0 or size_packets == 0:
        return 0
    # detections[s, m] — monitor m catches packet s.
    detections = (
        rng.random((size_packets, monitors.size))
        < rates[monitors] * routing_row[monitors]
    )
    if deduplicate:
        return int(detections.any(axis=1).sum())
    return int(detections.sum())


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of repeated sampling experiments for one configuration."""

    estimates: np.ndarray  # (runs x F) estimated OD sizes in packets
    actual: np.ndarray  # (F,) ground-truth sizes
    effective_rates: np.ndarray  # (F,) eq.-(7) rates used for inversion

    @property
    def per_od_accuracy(self) -> list[AccuracyStats]:
        return summarize_accuracy(self.estimates, self.actual)

    @property
    def mean_accuracy(self) -> np.ndarray:
        """Length-``F`` mean accuracy per OD pair."""
        return np.array([s.mean for s in self.per_od_accuracy])

    @property
    def average_accuracy(self) -> float:
        """Grand mean across OD pairs and runs."""
        return float(self.mean_accuracy.mean())

    @property
    def worst_od_accuracy(self) -> float:
        return float(self.mean_accuracy.min())

    @property
    def best_od_accuracy(self) -> float:
        return float(self.mean_accuracy.max())


class SamplingExperiment:
    """Repeatable Monte-Carlo evaluation of a sampling configuration.

    Parameters
    ----------
    routing:
        ``F x L`` routing matrix of the measurement task.
    od_sizes_packets:
        Ground-truth OD sizes per measurement interval.
    deduplicate:
        Collapse duplicate detections (paper assumption).
    """

    def __init__(
        self,
        routing: np.ndarray,
        od_sizes_packets: np.ndarray,
        deduplicate: bool = True,
    ) -> None:
        self.routing = np.asarray(routing, dtype=float)
        self.od_sizes_packets = np.asarray(od_sizes_packets, dtype=float)
        if self.od_sizes_packets.shape != (self.routing.shape[0],):
            raise ValueError("od sizes do not match routing rows")
        self.deduplicate = deduplicate

    def run(
        self,
        rates: np.ndarray,
        runs: int = 20,
        seed: int | None = None,
    ) -> ExperimentResult:
        """Run ``runs`` sampling experiments (paper: 20) at rates ``p``.

        OD pairs with zero effective rate get estimate 0 (and hence
        accuracy 0): no monitor observes them.
        """
        if runs < 1:
            raise ValueError("need at least one run")
        rng = np.random.default_rng(seed)
        rho_linear = np.clip(linear_effective_rates(self.routing, rates), 0.0, 1.0)
        estimates = np.zeros((runs, self.routing.shape[0]))
        for r in range(runs):
            counts = simulate_sampled_counts(
                self.routing,
                self.od_sizes_packets,
                rates,
                rng,
                deduplicate=self.deduplicate,
            )
            estimates[r] = estimate_sizes(counts, rho_linear)
        return ExperimentResult(
            estimates=estimates,
            actual=self.od_sizes_packets,
            effective_rates=rho_linear,
        )
