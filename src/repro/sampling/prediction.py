"""Analytic accuracy prediction for a sampling configuration.

The utility function is built on ``E[SRE](ρ) = c(1-ρ)/ρ`` (§IV-C);
this module exposes that prediction directly so a configuration's
measurement quality can be *forecast* without Monte-Carlo — and so the
simulator can be validated against theory (the tests do both
directions).

For an OD pair of ``S`` packets sampled at effective rate ``ρ``:

* relative standard error:  ``sqrt((1-ρ)/(S·ρ))``
* expected absolute relative error (normal approximation):
  ``sqrt(2/π) · rse`` — the quantity behind Table I's accuracy column.
"""

from __future__ import annotations

import numpy as np

from ..core.effective_rate import linear_effective_rates

__all__ = [
    "predicted_sre",
    "predicted_relative_std",
    "predicted_accuracy",
    "predict_for_configuration",
]

_ABS_NORMAL_FACTOR = float(np.sqrt(2.0 / np.pi))


def predicted_sre(od_sizes_packets, effective_rates) -> np.ndarray:
    """Expected squared relative error per OD pair (eq. 9)."""
    sizes = np.asarray(od_sizes_packets, dtype=float)
    rho = np.asarray(effective_rates, dtype=float)
    if sizes.shape != rho.shape:
        raise ValueError("sizes and rates must align")
    if np.any(sizes <= 0):
        raise ValueError("sizes must be positive")
    if np.any((rho <= 0) | (rho > 1)):
        raise ValueError("effective rates must be in (0, 1]")
    return (1.0 - rho) / (sizes * rho)


def predicted_relative_std(od_sizes_packets, effective_rates) -> np.ndarray:
    """Relative standard error ``sqrt(E[SRE])`` per OD pair."""
    return np.sqrt(predicted_sre(od_sizes_packets, effective_rates))


def predicted_accuracy(od_sizes_packets, effective_rates) -> np.ndarray:
    """Expected Table-I accuracy ``1 - E|rel err|`` per OD pair.

    Uses the normal approximation ``E|X| = sqrt(2/π)·σ`` for the
    centred estimate — accurate for the large OD sizes of backbone
    tasks.
    """
    return 1.0 - _ABS_NORMAL_FACTOR * predicted_relative_std(
        od_sizes_packets, effective_rates
    )


def predict_for_configuration(routing, rates, od_sizes_packets) -> np.ndarray:
    """Forecast per-OD accuracy for a rate vector (linear ρ model)."""
    rho = np.clip(linear_effective_rates(routing, rates), 1e-15, 1.0)
    return predicted_accuracy(od_sizes_packets, rho)
