"""Size estimation from sampled counts (inversion).

Random sampling at effective rate ``ρ`` turns an OD pair of ``S``
packets into a binomial ``X ~ Bin(S, ρ)``; the classic (Horvitz-
Thompson) inversion ``Ŝ = X/ρ`` is unbiased with relative variance
``(1-ρ)/(Sρ)`` — exactly the ``E[SRE]`` the utility function prices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["estimate_size", "estimate_sizes", "SizeEstimate"]


def estimate_size(sampled_count: float, effective_rate: float) -> float:
    """Invert one sampled count: ``Ŝ = x / ρ``."""
    if not 0.0 < effective_rate <= 1.0:
        raise ValueError(f"effective rate must be in (0, 1], got {effective_rate}")
    if sampled_count < 0:
        raise ValueError("sampled count must be non-negative")
    return sampled_count / effective_rate


def estimate_sizes(sampled_counts, effective_rates) -> np.ndarray:
    """Vectorized inversion; rates of 0 yield estimate 0 (no information)."""
    counts = np.asarray(sampled_counts, dtype=float)
    rates = np.asarray(effective_rates, dtype=float)
    if counts.shape[-1] != rates.shape[0] and counts.shape != rates.shape:
        raise ValueError(
            f"counts {counts.shape} do not align with rates {rates.shape}"
        )
    if np.any(rates < 0) or np.any(rates > 1):
        raise ValueError("effective rates must lie in [0, 1]")
    if np.any((rates == 0) & (counts != 0)):
        raise ValueError("non-zero count at zero sampling rate")
    safe = np.where(rates > 0, rates, 1.0)
    return np.where(rates > 0, counts / safe, 0.0)


@dataclass(frozen=True)
class SizeEstimate:
    """A point estimate with its binomial confidence interval."""

    estimate: float
    sampled_count: int
    effective_rate: float
    ci_low: float
    ci_high: float
    confidence: float

    @classmethod
    def from_count(
        cls, sampled_count: int, effective_rate: float, confidence: float = 0.95
    ) -> "SizeEstimate":
        """Build an estimate with a normal-approximation interval.

        The interval treats ``X/ρ`` as approximately normal with
        standard deviation ``sqrt(X (1-ρ))/ρ`` (plug-in), adequate for
        the large counts of backbone OD pairs.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        point = estimate_size(sampled_count, effective_rate)
        z = float(stats.norm.ppf(0.5 + confidence / 2.0))
        spread = z * np.sqrt(max(sampled_count, 1) * (1.0 - effective_rate)) / effective_rate
        return cls(
            estimate=point,
            sampled_count=int(sampled_count),
            effective_rate=float(effective_rate),
            ci_low=max(0.0, point - spread),
            ci_high=point + spread,
            confidence=confidence,
        )

    def covers(self, actual: float) -> bool:
        """True when the interval contains the actual size."""
        return self.ci_low <= actual <= self.ci_high
