"""Command-line interface.

Nine subcommands::

    netsampling topology {show,export} <name>     # inspect topologies
    netsampling solve ...                         # run the optimizer
    netsampling sweep ...                         # θ sweeps (+ --chaos)
    netsampling experiments [name ...] [--quick]  # regenerate the paper
    netsampling trace {summary,compare} ...       # inspect run manifests
    netsampling metrics <manifest>                # Prometheus exposition
    netsampling verify [--suite quick|full]       # differential checks
    netsampling serve --socket PATH               # warm solver daemon
    netsampling request <op> --socket PATH        # talk to the daemon

Examples::

    netsampling topology show geant
    netsampling topology export geant --format edgelist > geant.txt
    netsampling solve --topology geant --theta 100000
    netsampling solve --theta 100000 --trace-out run.jsonl
    netsampling solve --topology abilene --theta 20000 \\
        --od NYC:LAX:5000 --od SEA:ATL:300 --background 200000
    netsampling sweep --theta-min 1e4 --theta-max 1e6 --points 20
    netsampling sweep --theta-min 1e4 --theta-max 1e6 --points 10 \\
        --checkpoint sweep.jsonl          # resumable
    netsampling sweep --theta-min 1e4 --theta-max 1e6 --points 8 --chaos
    netsampling experiments table1 comparison --quick
    netsampling trace summary run.jsonl
    netsampling trace summary run.jsonl --spans   # span waterfall
    netsampling trace compare before.jsonl after.jsonl
    netsampling metrics run.jsonl                 # scrape-able text
    netsampling verify --suite quick --report verify_report.json
    netsampling verify --update-golden
    netsampling serve --socket /tmp/ns.sock --journal cache.jsonl \\
        --max-pending 32 --stale-grace 60 --default-deadline-ms 5000
    netsampling request ping --socket /tmp/ns.sock
    netsampling request health --socket /tmp/ns.sock --json
    netsampling solve --theta 100000 --daemon /tmp/ns.sock --json
    netsampling request solve --theta 1e5 --socket /tmp/ns.sock \\
        --deadline-ms 2000 --retries 3
    netsampling request drain --socket /tmp/ns.sock
    netsampling request shutdown --socket /tmp/ns.sock

``solve`` and ``sweep`` accept ``--daemon SOCKET`` to route through a
running ``netsampling serve`` daemon (warm caches, millisecond repeat
answers) and fall back to the inline solver — with a stderr warning —
when the socket is absent, so scripts work unchanged either way.

Results go to stdout; diagnostics (``--log-level``) and trace-written
notices go to stderr, so ``--json`` output stays machine-parseable.

``sweep --chaos`` is the self-checking resilience smoke: it re-runs the
sweep with a seeded worker kill and a seeded solver hang injected
(:mod:`repro.resilience.faults`) and fails unless the faulted runs
reproduce the unfaulted rates exactly, every exact member carries a
satisfied KKT certificate, and no shared-memory segments leak.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .baselines import solve_restricted
from .core import SamplingProblem, quantize_solution, solve
from .experiments.runner import EXPERIMENTS
from .obs import (
    SolverTrace,
    collecting_metrics,
    collecting_spans,
    compare_manifests,
    configure_logging,
    fingerprint_problem,
    get_logger,
    read_manifest,
    render_prometheus,
    render_span_tree,
    summarize_manifest,
    tracing,
    write_manifest,
)
from .routing import ODPair
from .topology import (
    Network,
    abilene_network,
    geant_network,
    load_network,
    network_to_edge_list,
    network_to_json,
    nsfnet_network,
)
from .traffic import janet_task, make_task

__all__ = ["main", "build_parser"]

logger = get_logger("cli")

_LOG_LEVELS = ("debug", "info", "warning", "error")

_BUILTIN_TOPOLOGIES = {
    "geant": geant_network,
    "abilene": abilene_network,
    "nsfnet": nsfnet_network,
}


def _resolve_topology(name: str) -> Network:
    """A built-in topology name or a JSON file path."""
    builder = _BUILTIN_TOPOLOGIES.get(name.lower())
    if builder is not None:
        return builder()
    try:
        return load_network(name)
    except OSError as exc:
        raise SystemExit(
            f"unknown topology {name!r}: not a built-in "
            f"({', '.join(_BUILTIN_TOPOLOGIES)}) and not a readable file "
            f"({exc})"
        )


def _parse_od(spec: str) -> tuple[str, str, float]:
    """Parse an ``ORIGIN:DEST:PPS`` OD-pair specification."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise SystemExit(f"bad --od {spec!r}: expected ORIGIN:DEST:PPS")
    try:
        pps = float(parts[2])
    except ValueError:
        raise SystemExit(f"bad --od {spec!r}: PPS must be a number")
    if pps <= 0:
        raise SystemExit(f"bad --od {spec!r}: PPS must be positive")
    return parts[0], parts[1], pps


def _add_log_level(parser: argparse.ArgumentParser, default=None) -> None:
    kwargs = {"default": default} if default else {"default": argparse.SUPPRESS}
    parser.add_argument(
        "--log-level", choices=_LOG_LEVELS, metavar="LEVEL",
        help="stderr logging threshold (debug, info, warning, error)",
        **kwargs,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="netsampling",
        description="Optimal network-wide packet sampling (CoNEXT 2006).",
    )
    _add_log_level(parser, default="warning")
    sub = parser.add_subparsers(dest="command", required=True)

    topo = sub.add_parser("topology", help="inspect or export topologies")
    topo_sub = topo.add_subparsers(dest="topology_command", required=True)
    show = topo_sub.add_parser("show", help="print a topology summary")
    show.add_argument("name", help="geant, abilene, or a JSON file")
    export = topo_sub.add_parser("export", help="write a topology to stdout")
    export.add_argument("name", help="geant, abilene, or a JSON file")
    export.add_argument(
        "--format", choices=("json", "edgelist"), default="json"
    )

    slv = sub.add_parser("solve", help="optimize placement and rates")
    slv.add_argument("--topology", default="geant",
                     help="geant, abilene, or a JSON file (default: geant)")
    slv.add_argument("--theta", type=float, required=True,
                     help="capacity: max sampled packets per interval")
    slv.add_argument("--interval", type=float, default=300.0,
                     help="measurement interval in seconds (default 300)")
    slv.add_argument("--alpha", type=float, default=1.0,
                     help="per-link max sampling rate (default 1.0)")
    slv.add_argument("--od", action="append", default=[],
                     metavar="ORIGIN:DEST:PPS",
                     help="OD pair of interest (repeatable); on geant "
                          "defaults to the paper's JANET task")
    slv.add_argument("--task-file", default=None, metavar="FILE.json",
                     help="declarative task document (overrides "
                          "--topology/--od/--background)")
    slv.add_argument("--background", type=float, default=None,
                     help="gravity background traffic in pkt/s")
    slv.add_argument("--seed", type=int, default=None,
                     help="seed for the gravity background")
    slv.add_argument("--method", default="gradient_projection",
                     choices=("gradient_projection", "slsqp", "trust-constr"))
    slv.add_argument("--backend", default="exact",
                     choices=("exact", "approx", "decompose", "compiled",
                              "auto"),
                     help="scale backend: exact GP (default), Frank-Wolfe "
                          "water-filling, connectivity decomposition, "
                          "compiled kernels, or auto by structure; "
                          "non-exact answers carry a certified "
                          "optimality gap")
    slv.add_argument("--presolve", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="reduce the problem (eliminate/merge links, drop "
                          "empty OD rows) before solving; exact — the lifted "
                          "solution has the identical objective "
                          "(default: on)")
    slv.add_argument("--restrict-to-node", default=None, metavar="NODE",
                     help="only links leaving NODE may host monitors")
    slv.add_argument("--quantize", action="store_true",
                     help="round rates to deployable 1-in-N sampling")
    slv.add_argument("--json", action="store_true", dest="as_json",
                     help="machine-readable output")
    slv.add_argument("--trace-out", default=None, metavar="FILE.jsonl",
                     help="write a per-iteration run manifest "
                          "(trace + metrics + fingerprint) as JSONL")
    slv.add_argument("--daemon", default=None, metavar="SOCKET",
                     help="route through a running `netsampling serve` "
                          "daemon (falls back inline, with a warning, "
                          "when the socket is unreachable)")
    _add_log_level(slv)

    swp = sub.add_parser(
        "sweep",
        help="solve a θ capacity sweep (resumable; --chaos self-check)",
    )
    swp.add_argument("--topology", default="geant",
                     help="geant, abilene, or a JSON file (default: geant)")
    swp.add_argument("--theta-min", type=float, required=True,
                     help="smallest capacity in the sweep")
    swp.add_argument("--theta-max", type=float, required=True,
                     help="largest capacity in the sweep")
    swp.add_argument("--points", type=int, default=10,
                     help="number of geometrically spaced θ points")
    swp.add_argument("--interval", type=float, default=300.0,
                     help="measurement interval in seconds (default 300)")
    swp.add_argument("--alpha", type=float, default=1.0,
                     help="per-link max sampling rate (default 1.0)")
    swp.add_argument("--od", action="append", default=[],
                     metavar="ORIGIN:DEST:PPS",
                     help="OD pair of interest (repeatable); on geant "
                          "defaults to the paper's JANET task")
    swp.add_argument("--task-file", default=None, metavar="FILE.json",
                     help="declarative task document (overrides "
                          "--topology/--od/--background)")
    swp.add_argument("--background", type=float, default=None,
                     help="gravity background traffic in pkt/s")
    swp.add_argument("--seed", type=int, default=None,
                     help="seed for the gravity background")
    swp.add_argument("--method", default="gradient_projection",
                     choices=("gradient_projection", "slsqp", "trust-constr"))
    swp.add_argument("--presolve", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="reduce the problem before solving (default: on)")
    swp.add_argument("--checkpoint", default=None, metavar="FILE.jsonl",
                     help="append completed points to FILE and resume from "
                          "it on restart (bitwise-identical to an "
                          "uninterrupted sweep)")
    swp.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="supervise each member solve with an S-second "
                          "wall-clock budget (retries + fallback chain)")
    swp.add_argument("--retries", type=int, default=1,
                     help="supervised retries per solve stage (default 1)")
    swp.add_argument("--chaos", action="store_true",
                     help="inject a seeded worker kill and solver hang, "
                          "then verify the sweep still reproduces the "
                          "unfaulted rates exactly")
    swp.add_argument("--chaos-seed", type=int, default=0,
                     help="seed for the injected fault schedule (default 0)")
    swp.add_argument("--json", action="store_true", dest="as_json",
                     help="machine-readable output")
    swp.add_argument("--daemon", default=None, metavar="SOCKET",
                     help="route through a running `netsampling serve` "
                          "daemon (falls back inline, with a warning, "
                          "when the socket is unreachable)")
    _add_log_level(swp)

    stm = sub.add_parser(
        "stream",
        help="run the streaming re-optimization loop over a traffic trace",
    )
    stm.add_argument("--topology", default="geant",
                     help="geant, abilene, or a JSON file (default: geant)")
    stm.add_argument("--theta", type=float, required=True,
                     help="capacity: max sampled packets per interval")
    stm.add_argument("--interval", type=float, default=3600.0,
                     help="measurement interval in seconds (default 3600: "
                          "one diurnal hour per interval)")
    stm.add_argument("--alpha", type=float, default=1.0,
                     help="per-link max sampling rate (default 1.0)")
    stm.add_argument("--od", action="append", default=[],
                     metavar="ORIGIN:DEST:PPS",
                     help="OD pair of interest (repeatable); on geant "
                          "defaults to the paper's JANET task")
    stm.add_argument("--task-file", default=None, metavar="FILE.json",
                     help="declarative task document (overrides "
                          "--topology/--od/--background)")
    stm.add_argument("--background", type=float, default=None,
                     help="gravity background traffic in pkt/s")
    stm.add_argument("--seed", type=int, default=None,
                     help="seed for the gravity background")
    stm.add_argument("--intervals", type=int, default=24,
                     help="number of trace intervals to stream (default 24)")
    stm.add_argument("--noise", type=float, default=0.05,
                     help="per-OD log-normal fluctuation sigma (default "
                          "0.05)")
    stm.add_argument("--trough", type=float, default=0.4,
                     help="diurnal trough factor in (0, 1]; 1 flattens the "
                          "cycle (default 0.4)")
    stm.add_argument("--start-hour", type=float, default=0.0,
                     help="hour of day the trace starts at (default 0)")
    stm.add_argument("--reconfig-weight", type=float, default=0.0,
                     help="reconfiguration penalty weight gamma; 0 disables "
                          "the penalty (default 0)")
    stm.add_argument("--trace-seed", type=int, default=None,
                     help="seed for the trace's fluctuation noise")
    stm.add_argument("--anomaly", default=None,
                     metavar="OD:MAGNITUDE:START:DURATION",
                     help="inject one traffic anomaly: OD index spikes by "
                          "MAGNITUDE for DURATION intervals from START")
    stm.add_argument("--json", action="store_true", dest="as_json",
                     help="machine-readable output")
    stm.add_argument("--daemon", default=None, metavar="SOCKET",
                     help="route through a running `netsampling serve` "
                          "daemon (falls back inline, with a warning, "
                          "when the socket is unreachable)")
    _add_log_level(stm)

    exp = sub.add_parser("experiments", help="regenerate paper experiments")
    exp.add_argument("names", nargs="*", choices=[*EXPERIMENTS, []],
                     help=f"subset of: {', '.join(EXPERIMENTS)}")
    exp.add_argument("--quick", action="store_true")
    exp.add_argument("--export-dir", default=None, metavar="DIR",
                     help="also write CSV/JSON for exportable experiments")
    exp.add_argument("--trace-out", default=None, metavar="FILE.jsonl",
                     help="capture every solve of the selected experiments "
                          "into one JSONL run manifest")
    exp.add_argument("--seed", type=int, default=None,
                     help="pin the ambient RNG seed for every stochastic "
                          "component (default: the package seed, 2006)")
    _add_log_level(exp)

    ver = sub.add_parser(
        "verify",
        help="differential correctness suites + golden regression corpus",
    )
    ver.add_argument("--suite", choices=("quick", "full"), default="quick",
                     help="quick: CI smoke (50 instances, GEANT golden); "
                          "full: wider instance pool + whole golden corpus")
    ver.add_argument("--instances", type=int, default=None,
                     help="override the suite's differential instance count")
    ver.add_argument("--seed", type=int, default=None,
                     help="seed for the random-instance generator "
                          "(default: the package seed, 2006)")
    ver.add_argument("--update-golden", action="store_true",
                     dest="update_golden",
                     help="regenerate the golden JSON corpus instead of "
                          "comparing against it")
    ver.add_argument("--report", default=None, metavar="FILE.json",
                     help="write the machine-readable report as JSON")
    ver.add_argument("--json", action="store_true", dest="as_json",
                     help="print the report JSON on stdout")
    ver.add_argument("--trace-out", default=None, metavar="FILE.jsonl",
                     help="write a run manifest embedding the report")
    _add_log_level(ver)

    trc = sub.add_parser("trace", help="inspect solver run manifests")
    trc_sub = trc.add_subparsers(dest="trace_command", required=True)
    summ = trc_sub.add_parser("summary", help="digest one manifest")
    summ.add_argument("manifest", help="JSONL manifest from --trace-out")
    summ.add_argument("--spans", action="store_true", dest="show_spans",
                      help="also render the span waterfall (parent/child "
                           "timing tree across every recording process)")
    comp = trc_sub.add_parser("compare", help="diff two manifests")
    comp.add_argument("manifest_a")
    comp.add_argument("manifest_b")

    met = sub.add_parser(
        "metrics",
        help="export a manifest's metrics as Prometheus text",
    )
    met.add_argument("manifest", help="JSONL manifest from --trace-out")
    met.add_argument("--prefix", default="repro",
                     help="metric name prefix (default: repro)")
    _add_log_level(met)

    srv = sub.add_parser(
        "serve",
        help="warm solver daemon on a Unix socket (see docs/serving.md)",
    )
    srv.add_argument("--socket", required=True, metavar="PATH",
                     help="Unix socket path to listen on")
    srv.add_argument("--ttl", type=float, default=300.0,
                     help="cached-result time to live in seconds "
                          "(default 300)")
    srv.add_argument("--journal", default=None, metavar="FILE.jsonl",
                     help="fsynced cache journal; a restarted daemon "
                          "replays it to re-warm the result cache")
    srv.add_argument("--max-results", type=int, default=256,
                     help="LRU cap on cached results (default 256)")
    srv.add_argument("--max-tasks", type=int, default=8,
                     help="LRU cap on resident tasks/problems (default 8)")
    srv.add_argument("--max-warm", type=int, default=16,
                     help="LRU cap on warm-start chains (default 16)")
    srv.add_argument("--batch-min", type=int, default=3,
                     help="min concurrent solves to group through the "
                          "shared-memory pool (default 3)")
    srv.add_argument("--batch-window", type=float, default=0.004,
                     help="micro-batch collection window in seconds "
                          "(default 0.004; 0 disables batching)")
    srv.add_argument("--workers", type=int, default=4,
                     help="solver thread-pool width (default 4)")
    srv.add_argument("--max-pending", type=int, default=64,
                     help="admission high watermark: pending solves at "
                          "which new solves are shed with `overloaded` "
                          "(default 64)")
    srv.add_argument("--low-watermark", type=int, default=None,
                     help="backlog depth below which shedding clears "
                          "(default: half of --max-pending)")
    srv.add_argument("--retry-after-ms", type=float, default=50.0,
                     help="base retry hint on shed requests, scaled by "
                          "backlog depth (default 50)")
    srv.add_argument("--max-inflight-per-conn", type=int, default=8,
                     help="pipelined frames in flight per connection "
                          "(default 8)")
    srv.add_argument("--max-frame-bytes", type=int, default=1024 * 1024,
                     help="request frame size bound (default 1 MiB)")
    srv.add_argument("--default-deadline-ms", type=float, default=None,
                     help="server-side deadline for requests that carry "
                          "none (default: unlimited)")
    srv.add_argument("--deadline-fallback",
                     action=argparse.BooleanOptionalAction, default=True,
                     help="degrade deadline-bound exact solves to the "
                          "certified-gap approx backend instead of "
                          "erroring (default on)")
    srv.add_argument("--stale-grace", type=float, default=0.0,
                     help="serve expired cache entries for this many "
                          "seconds past TTL (tier `stale`) while a "
                          "background refresh re-solves (default 0: off)")
    srv.add_argument("--drain-timeout", type=float, default=30.0,
                     help="hard bound on waiting for in-flight work "
                          "during drain (default 30)")
    _add_log_level(srv)

    req = sub.add_parser(
        "request",
        help="send one request to a running solver daemon",
    )
    req.add_argument("op",
                     choices=("ping", "stats", "health", "solve", "sweep",
                              "stream", "invalidate", "dump-trace", "drain",
                              "shutdown"),
                     help="daemon operation")
    req.add_argument("--socket", required=True, metavar="PATH",
                     help="daemon Unix socket path")
    req.add_argument("--timeout", type=float, default=300.0,
                     help="client receive timeout in seconds (default 300)")
    req.add_argument("--deadline-ms", type=float, default=None,
                     help="server-side budget for this request; on "
                          "exhaustion the answer degrades or fails with "
                          "kind=deadline_exceeded")
    req.add_argument("--retries", type=int, default=0,
                     help="client retries on overloaded sheds and "
                          "connection failures, with jittered backoff "
                          "honoring retry_after_ms (default 0; "
                          "invalidate/drain/shutdown never retry)")
    req.add_argument("--topology", default=None,
                     help="task topology (solve/sweep/invalidate; "
                          "default geant, or all entries for invalidate)")
    req.add_argument("--od", action="append", default=[],
                     metavar="ORIGIN:DEST:PPS",
                     help="OD pair of interest (repeatable)")
    req.add_argument("--task-file", default=None, metavar="FILE.json")
    req.add_argument("--background", type=float, default=None)
    req.add_argument("--seed", type=int, default=None)
    req.add_argument("--interval", type=float, default=300.0)
    req.add_argument("--alpha", type=float, default=1.0)
    req.add_argument("--theta", type=float, default=None,
                     help="capacity for op=solve")
    req.add_argument("--theta-min", type=float, default=None,
                     help="smallest capacity for op=sweep")
    req.add_argument("--theta-max", type=float, default=None,
                     help="largest capacity for op=sweep")
    req.add_argument("--points", type=int, default=10)
    req.add_argument("--intervals", type=int, default=24,
                     help="trace length for op=stream")
    req.add_argument("--noise", type=float, default=0.05,
                     help="fluctuation sigma for op=stream")
    req.add_argument("--trough", type=float, default=0.4,
                     help="diurnal trough for op=stream")
    req.add_argument("--start-hour", type=float, default=0.0,
                     help="trace start hour for op=stream")
    req.add_argument("--reconfig-weight", type=float, default=0.0,
                     help="reconfiguration penalty weight for op=stream")
    req.add_argument("--trace-seed", type=int, default=None,
                     help="trace noise seed for op=stream")
    req.add_argument("--anomaly", default=None,
                     metavar="OD:MAGNITUDE:START:DURATION",
                     help="injected anomaly for op=stream")
    req.add_argument("--method", default="gradient_projection",
                     choices=("gradient_projection", "slsqp", "trust-constr"))
    req.add_argument("--backend", default="exact",
                     choices=("exact", "approx", "decompose", "compiled",
                              "auto"))
    req.add_argument("--presolve", action=argparse.BooleanOptionalAction,
                     default=True)
    req.add_argument("--path", default=None, metavar="FILE.jsonl",
                     help="output manifest for op=dump-trace")
    req.add_argument("--json", action="store_true", dest="as_json",
                     help="machine-readable output")
    _add_log_level(req)
    return parser


def _cmd_topology(args: argparse.Namespace) -> int:
    net = _resolve_topology(args.name)
    if args.topology_command == "show":
        print(f"{net.name}: {net.num_nodes} nodes, {net.num_links} links")
        for node in net.nodes:
            out = ", ".join(sorted(net.neighbors(node.name)))
            print(f"  {node.name:>6} -> {out}")
        return 0
    if args.format == "json":
        print(network_to_json(net))
    else:
        print(network_to_edge_list(net), end="")
    return 0


def _build_task(args: argparse.Namespace):
    """The measurement task shared by ``solve`` and ``sweep``.

    Resolution order: an explicit ``--task-file``, then ``--od`` specs
    on the chosen topology, then the paper's JANET task on GEANT.
    """
    if args.task_file:
        from .traffic import load_task_file

        try:
            return load_task_file(args.task_file, _resolve_topology)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc))
    if args.od:
        net = _resolve_topology(args.topology)
        specs = [_parse_od(spec) for spec in args.od]
        od_pairs = [ODPair(o, d) for o, d, _ in specs]
        sizes = [pps for _, _, pps in specs]
        return make_task(
            net, od_pairs, sizes,
            background_pps=args.background or 0.0,
            interval_seconds=args.interval,
            seed=args.seed,
        )
    if args.topology.lower() == "geant":
        kwargs = {"interval_seconds": args.interval}
        if args.background is not None:
            kwargs["background_pps"] = args.background
        if args.seed is not None:
            kwargs["seed"] = args.seed
        return janet_task(**kwargs)
    raise SystemExit(
        "--od is required for non-GEANT topologies (GEANT defaults to "
        "the paper's JANET task)"
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.daemon:
        code = _solve_via_daemon(args)
        if code is not None:
            return code
    task = _build_task(args)
    problem = SamplingProblem.from_task(task, args.theta, alpha=args.alpha)
    if args.backend != "exact" and args.restrict_to_node:
        raise SystemExit(
            "--backend only applies to the network-wide solve; "
            "--restrict-to-node always uses exact GP"
        )
    if args.backend != "exact" and args.method != "gradient_projection":
        raise SystemExit(
            "--backend replaces the solver; drop --method or use "
            "--backend exact"
        )
    logger.info(
        "solving %s: %d links, %d OD pairs, theta=%g, method=%s, backend=%s",
        task.network.name, problem.num_links, problem.num_od_pairs,
        args.theta, args.method, args.backend,
    )

    def _run_solve() -> object:
        if args.restrict_to_node:
            links = [
                link.index
                for link in task.network.out_links(args.restrict_to_node)
            ]
            solution = solve_restricted(
                problem, links, method=args.method, presolve=args.presolve
            )
        elif args.backend != "exact":
            from .scale import solve_scaled

            solution = solve_scaled(problem, backend=args.backend)
        else:
            solution = solve(problem, method=args.method, presolve=args.presolve)
        if args.quantize:
            solution = quantize_solution(problem, solution).solution
        return solution

    if args.trace_out:
        # The ambient trace also captures nested solves (restricted,
        # quantization refinement) without parameter plumbing; the
        # span recorder stitches pooled/decomposed work into one tree.
        trace = SolverTrace(label=f"solve:{task.network.name}")
        with tracing(trace), collecting_metrics() as registry, \
                collecting_spans(f"solve:{task.network.name}") as recorder:
            solution = _run_solve()
            metrics_snapshot = registry.snapshot()
        manifest_path = write_manifest(
            args.trace_out,
            trace,
            metrics=metrics_snapshot,
            spans=recorder.spans,
            fingerprint=fingerprint_problem(
                problem,
                topology=task.network.name,
                seed=args.seed,
                method=args.method,
                alpha=args.alpha,
            ),
        )
        logger.info("run manifest written to %s", manifest_path)
        print(f"[trace written {manifest_path}]", file=sys.stderr)
    else:
        solution = _run_solve()

    logger.info(
        "solved in %d iterations (%.4fs wall, %d line-search trials, "
        "%d releases)",
        solution.diagnostics.iterations,
        solution.diagnostics.wall_time_s,
        solution.diagnostics.line_search_evaluations,
        solution.diagnostics.constraint_releases,
    )

    names = [link.name for link in task.network.links]
    if args.as_json:
        payload = {
            "converged": solution.diagnostics.converged,
            "method": solution.diagnostics.method,
            "backend": args.backend,
            "optimality_gap": solution.diagnostics.optimality_gap,
            "iterations": solution.diagnostics.iterations,
            "wall_time_s": solution.diagnostics.wall_time_s,
            "objective": solution.objective_value,
            "budget_used_packets": solution.budget_used_packets,
            "monitors": {
                names[i]: solution.rates[i]
                for i in solution.active_link_indices
            },
            "od_utilities": {
                od.name: float(u)
                for od, u in zip(task.routing.od_pairs, solution.od_utilities)
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        print(solution.summary(names))
        worst = int(np.argmin(solution.od_utilities))
        print(
            f"worst OD pair: {task.routing.od_pairs[worst].name} "
            f"(utility {solution.od_utilities[worst]:.4f})"
        )
    return 0 if solution.diagnostics.converged else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .core.batch import solve_theta_sweep
    from .resilience import SupervisorPolicy

    if args.daemon:
        code = _sweep_via_daemon(args)
        if code is not None:
            return code

    if args.theta_min <= 0 or args.theta_max < args.theta_min:
        raise SystemExit("need 0 < --theta-min <= --theta-max")
    if args.points < 2:
        raise SystemExit("--points must be at least 2")
    if args.chaos and args.checkpoint:
        raise SystemExit("--chaos is a self-contained check; drop --checkpoint")
    if args.chaos and args.points < 4:
        raise SystemExit("--chaos needs --points >= 4 to exercise the pool")

    task = _build_task(args)
    thetas = [
        float(t)
        for t in np.geomspace(args.theta_min, args.theta_max, args.points)
    ]
    problem = SamplingProblem.from_task(task, thetas[0], alpha=args.alpha)
    logger.info(
        "sweeping %s: %d links, %d points in [%g, %g], method=%s",
        task.network.name, problem.num_links, args.points,
        args.theta_min, args.theta_max, args.method,
    )

    policy = None
    if args.timeout is not None or args.chaos:
        policy = SupervisorPolicy(
            timeout_s=args.timeout if args.timeout is not None else 2.0,
            max_retries=args.retries,
        )
    if args.chaos:
        return _run_chaos_sweep(args, problem, thetas, policy)

    solutions = solve_theta_sweep(
        problem, thetas, method=args.method, presolve=args.presolve,
        policy=policy, checkpoint=args.checkpoint,
    )
    names = [link.name for link in task.network.links]
    if args.as_json:
        payload = [
            {
                "theta_packets": theta,
                "converged": s.diagnostics.converged,
                "degraded": s.diagnostics.degraded,
                "objective": s.objective_value,
                "monitors": {
                    names[i]: s.rates[i] for i in s.active_link_indices
                },
            }
            for theta, s in zip(thetas, solutions)
        ]
        print(json.dumps(payload, indent=2))
    else:
        for theta, s in zip(thetas, solutions):
            status = "ok" if s.diagnostics.converged else "DEGRADED"
            print(
                f"theta={theta:>12.1f}  monitors={len(s.active_link_indices):>3d}  "
                f"objective={s.objective_value:.6f}  [{status}]"
            )
    return 0 if all(s.diagnostics.converged for s in solutions) else 1


def _run_chaos_sweep(args, problem, thetas, policy) -> int:
    """``sweep --chaos``: inject faults, verify nothing changed.

    Two faulted re-runs of the same sweep — a seeded worker SIGKILL
    through the crash-safe pool, and a seeded solver hang through the
    supervisor — must reproduce their unfaulted twins' rates bitwise,
    keep every member's KKT certificate satisfied, and leave no
    shared-memory segments behind.  Exit is non-zero on any violation.
    """
    from .core.batch import solve_batch, solve_theta_sweep
    from .core.shm import live_segment_names
    from .resilience import chaos_plan, injected_faults

    hang_seconds = 3.0 * policy.timeout_s
    instances = [problem.with_theta(t).clamped() for t in thetas]
    with collecting_metrics() as registry:
        reference = solve_theta_sweep(
            problem, thetas, method=args.method, presolve=args.presolve,
            policy=policy,
        )
        hang = chaos_plan(
            args.chaos_seed, len(thetas), hang_seconds=hang_seconds,
            kill_worker=False,
        )
        with injected_faults(hang):
            hung = solve_theta_sweep(
                problem, thetas, method=args.method, presolve=args.presolve,
                policy=policy,
            )
        batch_reference = solve_batch(
            instances, processes=1, method=args.method, presolve=args.presolve
        )
        kill = chaos_plan(args.chaos_seed, len(thetas), hang_solve=False)
        with injected_faults(kill):
            batch_killed = solve_batch(
                instances, processes=min(4, len(instances)),
                method=args.method, presolve=args.presolve,
            )
        counters = registry.snapshot()["counters"]

    def _bitwise(a, b) -> bool:
        return all(
            np.array_equal(x.rates, y.rates) for x, y in zip(a, b)
        )

    def _kkt_ok(solutions) -> bool:
        return all(
            s.diagnostics.kkt is not None and s.diagnostics.kkt.satisfied
            for s in solutions
            if s.diagnostics.converged and not s.diagnostics.degraded
        )

    checks = {
        "hang: faulted sweep rates bitwise-equal unfaulted": _bitwise(
            reference, hung
        ),
        "hang: no member degraded": not any(
            s.diagnostics.degraded for s in hung
        ),
        "kill: faulted batch rates bitwise-equal unfaulted": _bitwise(
            batch_reference, batch_killed
        ),
        "kill: no member degraded": not any(
            s.diagnostics.degraded for s in batch_killed
        ),
        "kkt: every exact member carries a satisfied certificate": (
            _kkt_ok(hung) and _kkt_ok(batch_killed)
        ),
        "faults: the hang actually fired and tripped the timeout": (
            counters.get("faults.injected.solve.hang", 0) >= 1
            and counters.get("resilience.timeout", 0) >= 1
        ),
        "faults: the worker kill actually broke the pool": (
            counters.get("resilience.pool.broken", 0) >= 1
        ),
        "shm: no leaked shared-memory segments": not live_segment_names(),
    }
    resilience_counters = {
        key: value
        for key, value in sorted(counters.items())
        if key.startswith(("resilience.", "faults.", "batch.shm."))
    }
    if args.as_json:
        print(
            json.dumps(
                {
                    "passed": all(checks.values()),
                    "checks": checks,
                    "counters": resilience_counters,
                },
                indent=2,
            )
        )
    else:
        for name, passed in checks.items():
            print(f"[{'PASS' if passed else 'FAIL'}] {name}")
        print("\nresilience counters:")
        for key, value in resilience_counters.items():
            print(f"  {key} = {value}")
    return 0 if all(checks.values()) else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from contextlib import nullcontext
    from pathlib import Path

    from .rng import get_default_seed, set_default_seed
    from .verify import run_verification, update_golden

    set_default_seed(args.seed)
    if args.update_golden:
        for path in update_golden():
            print(f"regenerated {path}")
        return 0

    seed = args.seed if args.seed is not None else get_default_seed()
    trace = SolverTrace(label=f"verify:{args.suite}")
    scope = tracing(trace) if args.trace_out else nullcontext()
    span_scope = (
        collecting_spans(f"verify:{args.suite}")
        if args.trace_out
        else nullcontext()
    )
    with scope, collecting_metrics() as registry, span_scope as recorder:
        report = run_verification(
            suite=args.suite, seed=seed, instances=args.instances
        )
        metrics_snapshot = registry.snapshot()
    payload = report.to_dict()

    if args.report:
        Path(args.report).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[report written {args.report}]", file=sys.stderr)
    if args.trace_out:
        manifest_path = write_manifest(
            args.trace_out,
            trace,
            metrics=metrics_snapshot,
            # `is not None`: an empty SpanRecorder is falsy (len == 0).
            spans=recorder.spans if recorder is not None else None,
            extra={"verify": payload},
        )
        logger.info("run manifest written to %s", manifest_path)
        print(f"[trace written {manifest_path}]", file=sys.stderr)
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        print(report.summary())
    return 0 if report.passed else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from contextlib import nullcontext
    from pathlib import Path

    from .experiments.runner import EXPORTERS
    from .rng import set_default_seed

    set_default_seed(args.seed)
    names = args.names or list(EXPERIMENTS)
    export_dir = Path(args.export_dir) if args.export_dir else None
    if export_dir is not None:
        export_dir.mkdir(parents=True, exist_ok=True)

    trace = SolverTrace(label=f"experiments:{','.join(names)}")
    scope = (
        tracing(trace) if args.trace_out else nullcontext()
    )
    metrics_scope = (
        collecting_metrics() if args.trace_out else nullcontext()
    )
    span_scope = (
        collecting_spans("experiments") if args.trace_out else nullcontext()
    )
    with scope, metrics_scope as registry, span_scope as recorder:
        for name in names:
            logger.info("running experiment %s (quick=%s)", name, args.quick)
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
            print(EXPERIMENTS[name](args.quick))
            if export_dir is not None and name in EXPORTERS:
                for path in EXPORTERS[name](args.quick, export_dir):
                    logger.info("exported %s", path)
                    print(f"[exported {path}]")
        metrics_snapshot = registry.snapshot() if registry else None
    if args.trace_out:
        manifest_path = write_manifest(
            args.trace_out,
            trace,
            metrics=metrics_snapshot,
            # `is not None`: an empty SpanRecorder is falsy (len == 0).
            spans=recorder.spans if recorder is not None else None,
            extra={"experiments": names, "quick": args.quick},
        )
        logger.info("run manifest written to %s", manifest_path)
        print(f"[trace written {manifest_path}]", file=sys.stderr)
    return 0


def _read_manifest_arg(path: str):
    try:
        return read_manifest(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read manifest {path!r}: {exc}")


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "summary":
        manifest = _read_manifest_arg(args.manifest)
        print(summarize_manifest(manifest))
        if args.show_spans:
            print("\nspan waterfall:")
            print(render_span_tree(manifest.spans))
        return 0
    print(
        compare_manifests(
            _read_manifest_arg(args.manifest_a),
            _read_manifest_arg(args.manifest_b),
        )
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    manifest = _read_manifest_arg(args.manifest)
    if manifest.metrics is None:
        raise SystemExit(
            f"manifest {args.manifest!r} carries no metrics record "
            "(was the run traced with --trace-out?)"
        )
    print(render_prometheus(manifest.metrics, prefix=args.prefix), end="")
    return 0


def _render_remote_solution(result: dict) -> str:
    """Text summary of a daemon solve result (mirrors the inline shape)."""
    status = "ok" if result["converged"] else "DEGRADED"
    gap = result.get("optimality_gap")
    head = (
        f"{result['num_monitors']} active monitors, "
        f"objective={result['objective']:.6f}, "
        f"budget={result['budget_used_packets']:.1f} packets  [{status}]"
    )
    if gap is not None:
        head += f"  (certified gap {gap:.2e})"
    lines = [head]
    monitors = sorted(
        result["monitors"].items(), key=lambda kv: (-kv[1], kv[0])
    )
    for name, rate in monitors:
        lines.append(f"  {name:>14}  rate={rate:.6f}")
    utilities = result.get("od_utilities") or {}
    if utilities:
        worst = min(utilities, key=utilities.get)
        lines.append(
            f"worst OD pair: {worst} (utility {utilities[worst]:.4f})"
        )
    return "\n".join(lines)


def _daemon_note(args, response: dict) -> None:
    latency_ms = float(response.get("latency_s") or 0.0) * 1e3
    print(
        f"[daemon {args.daemon}: cache {response.get('cache', '?')}, "
        f"{latency_ms:.1f} ms]",
        file=sys.stderr,
    )


def _solve_via_daemon(args: argparse.Namespace) -> int | None:
    """Route ``solve --daemon`` through a running server.

    Returns the exit code, or ``None`` (after a stderr warning) when
    the daemon is unreachable and the caller should solve inline.
    """
    from .serve import (
        ProtocolError,
        ServeClient,
        ServeConnectionError,
        ServeRequestError,
        solve_params_from_args,
    )

    unsupported = [
        flag for flag, value in (
            ("--restrict-to-node", args.restrict_to_node),
            ("--quantize", args.quantize),
            ("--trace-out", args.trace_out),
        ) if value
    ]
    if unsupported:
        raise SystemExit(
            f"--daemon solves do not support {', '.join(unsupported)}; "
            "drop the flag or solve inline"
        )
    try:
        params = solve_params_from_args(args)
    except (ProtocolError, ValueError) as exc:
        raise SystemExit(str(exc))
    try:
        response = ServeClient(args.daemon).request("solve", params)
    except ServeConnectionError as exc:
        logger.warning("%s; solving inline", exc)
        print(f"[daemon unavailable ({exc}); solving inline]",
              file=sys.stderr)
        return None
    except ServeRequestError as exc:
        raise SystemExit(f"daemon error: {exc}")
    result = response["result"]
    if args.as_json:
        print(json.dumps(result, indent=2))
    else:
        print(_render_remote_solution(result))
        _daemon_note(args, response)
    return 0 if result["converged"] else 1


def _sweep_via_daemon(args: argparse.Namespace) -> int | None:
    """Route ``sweep --daemon`` through a running server (or ``None``)."""
    from .serve import (
        ProtocolError,
        ServeClient,
        ServeConnectionError,
        ServeRequestError,
        sweep_params_from_args,
    )

    unsupported = [
        flag for flag, value in (
            ("--checkpoint", args.checkpoint),
            ("--timeout", args.timeout is not None),
            ("--chaos", args.chaos),
        ) if value
    ]
    if unsupported:
        raise SystemExit(
            f"--daemon sweeps do not support {', '.join(unsupported)}; "
            "drop the flag or sweep inline"
        )
    try:
        params = sweep_params_from_args(args)
    except (ProtocolError, ValueError) as exc:
        raise SystemExit(str(exc))
    try:
        response = ServeClient(args.daemon).request("sweep", params)
    except ServeConnectionError as exc:
        logger.warning("%s; sweeping inline", exc)
        print(f"[daemon unavailable ({exc}); sweeping inline]",
              file=sys.stderr)
        return None
    except ServeRequestError as exc:
        raise SystemExit(f"daemon error: {exc}")
    result = response["result"]
    points = result["points"]
    if args.as_json:
        print(json.dumps(points, indent=2))
    else:
        for point in points:
            status = "ok" if point["converged"] else "DEGRADED"
            print(
                f"theta={point['theta_packets']:>12.1f}  "
                f"monitors={point['num_monitors']:>3d}  "
                f"objective={point['objective']:.6f}  [{status}]"
            )
        _daemon_note(args, response)
    return 0 if result["converged"] else 1


def _render_stream_report(payload: dict) -> str:
    """Human-readable per-interval table of one streaming run."""
    lines = [
        f"{'int':>4}  {'objective':>12}  {'mon':>4}  {'mode':>4}  "
        f"{'iters':>5}  {'churn_l1':>10}  change-points"
    ]
    for entry in payload["intervals"]:
        mode = "cold" if entry["cold"] else "warm"
        iters = (
            "-"
            if entry["warm_iterations"] is None
            else str(entry["warm_iterations"])
        )
        churn = (
            "-" if entry["churn_l1"] is None else f"{entry['churn_l1']:.4f}"
        )
        cps = ",".join(str(od) for od in entry["change_points"]) or "-"
        lines.append(
            f"{entry['index']:>4}  {entry['objective']:>12.6f}  "
            f"{entry['num_monitors']:>4}  {mode:>4}  {iters:>5}  "
            f"{churn:>10}  {cps}"
        )
    summary = payload["summary"]
    p95 = summary["warm_iterations_p95"]
    change_points = summary["change_point_intervals"]
    lines.append(
        f"{summary['intervals']} intervals: "
        f"{summary['cold_resolves']} cold re-solve(s), "
        f"change points at "
        f"{','.join(str(i) for i in change_points) if change_points else 'none'}, "
        f"warm-iteration p95 {'-' if p95 is None else format(p95, '.1f')}"
    )
    return "\n".join(lines)


def _stream_via_daemon(args: argparse.Namespace, params: dict) -> int | None:
    """Route ``stream --daemon`` through a running server (or ``None``)."""
    from .serve import ServeClient, ServeConnectionError, ServeRequestError

    try:
        response = ServeClient(args.daemon).request("stream", params)
    except ServeConnectionError as exc:
        logger.warning("%s; streaming inline", exc)
        print(f"[daemon unavailable ({exc}); streaming inline]",
              file=sys.stderr)
        return None
    except ServeRequestError as exc:
        raise SystemExit(f"daemon error: {exc}")
    result = response["result"]
    if args.as_json:
        print(json.dumps(result, indent=2))
    else:
        print(_render_stream_report(result))
        _daemon_note(args, response)
    return 0 if result["converged"] else 1


def _cmd_stream(args: argparse.Namespace) -> int:
    from .serve import ProtocolError, stream_params_from_args
    from .serve.session import SolverSession

    try:
        params = stream_params_from_args(args)
    except (ProtocolError, ValueError) as exc:
        raise SystemExit(str(exc))
    if args.daemon:
        code = _stream_via_daemon(args, params)
        if code is not None:
            return code
    logger.info(
        "streaming %s: %d intervals, theta=%g, reconfig_weight=%g",
        params["topology"], params["intervals"], params["theta"],
        params["reconfig_weight"],
    )
    # The inline path runs the daemon's own session code, so the two
    # routes can never drift apart.
    try:
        payload = SolverSession(max_tasks=1, max_warm=1).execute_stream(
            params
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(_render_stream_report(payload))
    return 0 if payload["converged"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServerConfig, run_server

    if args.ttl <= 0:
        raise SystemExit("--ttl must be positive")
    if args.batch_window < 0:
        raise SystemExit("--batch-window must be >= 0")
    config = ServerConfig(
        socket_path=args.socket,
        ttl_s=args.ttl,
        max_cached_results=args.max_results,
        max_resident_tasks=args.max_tasks,
        max_warm_chains=args.max_warm,
        journal_path=args.journal,
        batch_min=args.batch_min,
        batch_window_s=args.batch_window,
        executor_workers=args.workers,
        max_pending=args.max_pending,
        low_watermark=args.low_watermark,
        retry_after_ms=args.retry_after_ms,
        max_inflight_per_conn=args.max_inflight_per_conn,
        max_frame_bytes=args.max_frame_bytes,
        default_deadline_ms=args.default_deadline_ms,
        deadline_fallback=args.deadline_fallback,
        stale_grace_s=args.stale_grace,
        drain_timeout_s=args.drain_timeout,
    )
    print(
        f"[serving on {args.socket}; stop with ctrl-c or "
        "`netsampling request shutdown`]",
        file=sys.stderr,
    )
    try:
        run_server(config)
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        raise SystemExit(f"cannot serve on {args.socket}: {exc}")
    return 0


def _cmd_request(args: argparse.Namespace) -> int:
    from .serve import (
        ProtocolError,
        ServeClient,
        ServeConnectionError,
        ServeRequestError,
        solve_params_from_args,
        stream_params_from_args,
        sweep_params_from_args,
    )

    op = args.op.replace("-", "_")
    try:
        if op == "solve":
            if args.theta is None:
                raise SystemExit("request solve needs --theta")
            params = solve_params_from_args(args)
        elif op == "stream":
            if args.theta is None:
                raise SystemExit("request stream needs --theta")
            params = stream_params_from_args(args)
        elif op == "sweep":
            if args.theta_min is None or args.theta_max is None:
                raise SystemExit(
                    "request sweep needs --theta-min and --theta-max"
                )
            params = sweep_params_from_args(args)
        elif op == "invalidate":
            params = (
                {"topology": args.topology} if args.topology else {}
            )
        elif op == "dump_trace":
            if not args.path:
                raise SystemExit("request dump-trace needs --path")
            params = {"path": args.path}
        else:
            params = None
    except (ProtocolError, ValueError) as exc:
        raise SystemExit(str(exc))

    client = ServeClient(
        args.socket, timeout_s=args.timeout, max_retries=args.retries
    )
    try:
        response = client.request(
            op, params, deadline_ms=args.deadline_ms
        )
    except ServeConnectionError as exc:
        raise SystemExit(str(exc))
    except ServeRequestError as exc:
        raise SystemExit(f"daemon error ({exc.kind}): {exc}")
    result = response.get("result", {})
    if op == "solve" and not args.as_json:
        print(_render_remote_solution(result))
        print(
            f"[cache {response.get('cache', '?')}, "
            f"{float(response.get('latency_s') or 0.0) * 1e3:.1f} ms]",
            file=sys.stderr,
        )
        return 0 if result["converged"] else 1
    if op == "sweep" and not args.as_json:
        for point in result["points"]:
            status = "ok" if point["converged"] else "DEGRADED"
            print(
                f"theta={point['theta_packets']:>12.1f}  "
                f"monitors={point['num_monitors']:>3d}  "
                f"objective={point['objective']:.6f}  [{status}]"
            )
        return 0 if result["converged"] else 1
    if op == "stream" and not args.as_json:
        print(_render_stream_report(result))
        return 0 if result["converged"] else 1
    print(json.dumps(result, indent=2, sort_keys=True))
    if op in ("solve", "sweep", "stream"):
        return 0 if result["converged"] else 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "log_level", None) or "warning")
    try:
        if args.command == "topology":
            return _cmd_topology(args)
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "stream":
            return _cmd_stream(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "request":
            return _cmd_request(args)
        return _cmd_experiments(args)
    except BrokenPipeError:
        # Output was piped to a consumer (head, less) that closed early.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
