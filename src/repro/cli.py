"""Command-line interface.

Three subcommands::

    netsampling topology {show,export} <name>     # inspect topologies
    netsampling solve ...                         # run the optimizer
    netsampling experiments [name ...] [--quick]  # regenerate the paper

Examples::

    netsampling topology show geant
    netsampling topology export geant --format edgelist > geant.txt
    netsampling solve --topology geant --theta 100000
    netsampling solve --topology abilene --theta 20000 \\
        --od NYC:LAX:5000 --od SEA:ATL:300 --background 200000
    netsampling experiments table1 comparison --quick
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .baselines import solve_restricted
from .core import SamplingProblem, quantize_solution, solve
from .experiments.runner import EXPERIMENTS
from .routing import ODPair
from .topology import (
    Network,
    abilene_network,
    geant_network,
    load_network,
    network_to_edge_list,
    network_to_json,
    nsfnet_network,
)
from .traffic import janet_task, make_task

__all__ = ["main", "build_parser"]

_BUILTIN_TOPOLOGIES = {
    "geant": geant_network,
    "abilene": abilene_network,
    "nsfnet": nsfnet_network,
}


def _resolve_topology(name: str) -> Network:
    """A built-in topology name or a JSON file path."""
    builder = _BUILTIN_TOPOLOGIES.get(name.lower())
    if builder is not None:
        return builder()
    try:
        return load_network(name)
    except OSError as exc:
        raise SystemExit(
            f"unknown topology {name!r}: not a built-in "
            f"({', '.join(_BUILTIN_TOPOLOGIES)}) and not a readable file "
            f"({exc})"
        )


def _parse_od(spec: str) -> tuple[str, str, float]:
    """Parse an ``ORIGIN:DEST:PPS`` OD-pair specification."""
    parts = spec.split(":")
    if len(parts) != 3:
        raise SystemExit(f"bad --od {spec!r}: expected ORIGIN:DEST:PPS")
    try:
        pps = float(parts[2])
    except ValueError:
        raise SystemExit(f"bad --od {spec!r}: PPS must be a number")
    if pps <= 0:
        raise SystemExit(f"bad --od {spec!r}: PPS must be positive")
    return parts[0], parts[1], pps


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="netsampling",
        description="Optimal network-wide packet sampling (CoNEXT 2006).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topo = sub.add_parser("topology", help="inspect or export topologies")
    topo_sub = topo.add_subparsers(dest="topology_command", required=True)
    show = topo_sub.add_parser("show", help="print a topology summary")
    show.add_argument("name", help="geant, abilene, or a JSON file")
    export = topo_sub.add_parser("export", help="write a topology to stdout")
    export.add_argument("name", help="geant, abilene, or a JSON file")
    export.add_argument(
        "--format", choices=("json", "edgelist"), default="json"
    )

    slv = sub.add_parser("solve", help="optimize placement and rates")
    slv.add_argument("--topology", default="geant",
                     help="geant, abilene, or a JSON file (default: geant)")
    slv.add_argument("--theta", type=float, required=True,
                     help="capacity: max sampled packets per interval")
    slv.add_argument("--interval", type=float, default=300.0,
                     help="measurement interval in seconds (default 300)")
    slv.add_argument("--alpha", type=float, default=1.0,
                     help="per-link max sampling rate (default 1.0)")
    slv.add_argument("--od", action="append", default=[],
                     metavar="ORIGIN:DEST:PPS",
                     help="OD pair of interest (repeatable); on geant "
                          "defaults to the paper's JANET task")
    slv.add_argument("--task-file", default=None, metavar="FILE.json",
                     help="declarative task document (overrides "
                          "--topology/--od/--background)")
    slv.add_argument("--background", type=float, default=None,
                     help="gravity background traffic in pkt/s")
    slv.add_argument("--seed", type=int, default=None,
                     help="seed for the gravity background")
    slv.add_argument("--method", default="gradient_projection",
                     choices=("gradient_projection", "slsqp", "trust-constr"))
    slv.add_argument("--restrict-to-node", default=None, metavar="NODE",
                     help="only links leaving NODE may host monitors")
    slv.add_argument("--quantize", action="store_true",
                     help="round rates to deployable 1-in-N sampling")
    slv.add_argument("--json", action="store_true", dest="as_json",
                     help="machine-readable output")

    exp = sub.add_parser("experiments", help="regenerate paper experiments")
    exp.add_argument("names", nargs="*", choices=[*EXPERIMENTS, []],
                     help=f"subset of: {', '.join(EXPERIMENTS)}")
    exp.add_argument("--quick", action="store_true")
    exp.add_argument("--export-dir", default=None, metavar="DIR",
                     help="also write CSV/JSON for exportable experiments")
    return parser


def _cmd_topology(args: argparse.Namespace) -> int:
    net = _resolve_topology(args.name)
    if args.topology_command == "show":
        print(f"{net.name}: {net.num_nodes} nodes, {net.num_links} links")
        for node in net.nodes:
            out = ", ".join(sorted(net.neighbors(node.name)))
            print(f"  {node.name:>6} -> {out}")
        return 0
    if args.format == "json":
        print(network_to_json(net))
    else:
        print(network_to_edge_list(net), end="")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.task_file:
        from .traffic import load_task_file

        try:
            task = load_task_file(args.task_file, _resolve_topology)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc))
    elif args.od:
        net = _resolve_topology(args.topology)
        specs = [_parse_od(spec) for spec in args.od]
        od_pairs = [ODPair(o, d) for o, d, _ in specs]
        sizes = [pps for _, _, pps in specs]
        task = make_task(
            net, od_pairs, sizes,
            background_pps=args.background or 0.0,
            interval_seconds=args.interval,
            seed=args.seed,
        )
    elif args.topology.lower() == "geant":
        kwargs = {"interval_seconds": args.interval}
        if args.background is not None:
            kwargs["background_pps"] = args.background
        if args.seed is not None:
            kwargs["seed"] = args.seed
        task = janet_task(**kwargs)
    else:
        raise SystemExit(
            "--od is required for non-GEANT topologies (GEANT defaults to "
            "the paper's JANET task)"
        )

    problem = SamplingProblem.from_task(task, args.theta, alpha=args.alpha)
    if args.restrict_to_node:
        links = [
            link.index for link in task.network.out_links(args.restrict_to_node)
        ]
        solution = solve_restricted(problem, links, method=args.method)
    else:
        solution = solve(problem, method=args.method)

    if args.quantize:
        solution = quantize_solution(problem, solution).solution

    names = [link.name for link in task.network.links]
    if args.as_json:
        payload = {
            "converged": solution.diagnostics.converged,
            "method": solution.diagnostics.method,
            "iterations": solution.diagnostics.iterations,
            "objective": solution.objective_value,
            "budget_used_packets": solution.budget_used_packets,
            "monitors": {
                names[i]: solution.rates[i]
                for i in solution.active_link_indices
            },
            "od_utilities": {
                od.name: float(u)
                for od, u in zip(task.routing.od_pairs, solution.od_utilities)
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        print(solution.summary(names))
        worst = int(np.argmin(solution.od_utilities))
        print(
            f"worst OD pair: {task.routing.od_pairs[worst].name} "
            f"(utility {solution.od_utilities[worst]:.4f})"
        )
    return 0 if solution.diagnostics.converged else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .experiments.runner import EXPORTERS

    names = args.names or list(EXPERIMENTS)
    export_dir = Path(args.export_dir) if args.export_dir else None
    if export_dir is not None:
        export_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}")
        print(EXPERIMENTS[name](args.quick))
        if export_dir is not None and name in EXPORTERS:
            for path in EXPORTERS[name](args.quick, export_dir):
                print(f"[exported {path}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "topology":
            return _cmd_topology(args)
        if args.command == "solve":
            return _cmd_solve(args)
        return _cmd_experiments(args)
    except BrokenPipeError:
        # Output was piped to a consumer (head, less) that closed early.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
