"""Traffic substrate: matrices, flows, NetFlow simulation, workloads."""

from .dynamics import diurnal_factor, fail_link, inject_anomaly, scale_diurnal
from .taskfile import load_task_file, task_from_dict
from .temporal import TraceEvent, TraceInterval, generate_trace
from .flows import (
    BoundedParetoFlowSizes,
    ConstantFlowSizes,
    EmpiricalFlowSizes,
    Flow,
    FlowSizeModel,
    LognormalFlowSizes,
    generate_flows,
    mean_inverse_size,
)
from .gravity import gravity_traffic_matrix, lognormal_node_masses
from .link_loads import add_od_loads, link_loads_from_traffic, utilizations
from .matrix import TrafficMatrix
from .netflow import (
    FlowRecord,
    NetFlowCollector,
    NetFlowConfig,
    NetFlowMonitor,
    simulate_netflow_on_link,
)
from .workloads import (
    GEANT_POP_MASSES,
    JANET_OD_SIZES_PPS,
    MeasurementTask,
    janet_task,
    make_task,
    merge_tasks,
)

__all__ = [
    "TrafficMatrix",
    "gravity_traffic_matrix",
    "lognormal_node_masses",
    "Flow",
    "FlowSizeModel",
    "LognormalFlowSizes",
    "BoundedParetoFlowSizes",
    "ConstantFlowSizes",
    "EmpiricalFlowSizes",
    "generate_flows",
    "mean_inverse_size",
    "link_loads_from_traffic",
    "add_od_loads",
    "utilizations",
    "NetFlowConfig",
    "NetFlowMonitor",
    "NetFlowCollector",
    "FlowRecord",
    "simulate_netflow_on_link",
    "MeasurementTask",
    "janet_task",
    "make_task",
    "merge_tasks",
    "JANET_OD_SIZES_PPS",
    "GEANT_POP_MASSES",
    "diurnal_factor",
    "scale_diurnal",
    "inject_anomaly",
    "fail_link",
    "TraceEvent",
    "TraceInterval",
    "generate_trace",
    "load_task_file",
    "task_from_dict",
]
