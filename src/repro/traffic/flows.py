"""Flow-level traffic: 5-tuple flows and flow-size models.

The paper's utility function needs, per OD pair ``k``, the mean inverse
size ``c_k = E[1/S_k]`` of the quantity being estimated (§IV-C plots
``M`` for ``E[1/S]`` corresponding to average sizes around 500
packets).  The NetFlow substrate additionally needs an explicit packet
population: 5-tuple flows with heavy-tailed packet counts, which this
module generates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "Flow",
    "FlowSizeModel",
    "LognormalFlowSizes",
    "BoundedParetoFlowSizes",
    "ConstantFlowSizes",
    "EmpiricalFlowSizes",
    "mean_inverse_size",
    "generate_flows",
]

#: Typical mean packet size in bytes used to attach byte counts to flows.
_MEAN_PACKET_BYTES = 500


@dataclass(frozen=True)
class Flow:
    """A 5-tuple flow belonging to one OD pair.

    Attributes
    ----------
    flow_id:
        Unique integer id; doubles as the packet-hash seed used by the
        collector-side deduplication (DESIGN.md §2).
    od_index:
        Row of the owning OD pair in the measurement routing matrix.
    packets:
        Flow size in packets (``>= 1``).
    bytes:
        Flow size in bytes.
    start_time, end_time:
        Seconds within the measurement interval.
    """

    flow_id: int
    od_index: int
    packets: int
    bytes: int
    start_time: float
    end_time: float

    def __post_init__(self) -> None:
        if self.packets < 1:
            raise ValueError("a flow has at least one packet")
        if self.end_time < self.start_time:
            raise ValueError("flow ends before it starts")


class FlowSizeModel:
    """Distribution of per-flow packet counts."""

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` integer flow sizes (each ``>= 1``)."""
        raise NotImplementedError

    @property
    def mean(self) -> float:
        """Expected flow size in packets."""
        raise NotImplementedError


@dataclass(frozen=True)
class LognormalFlowSizes(FlowSizeModel):
    """Log-normal packet counts — the common fit for flow sizes.

    Parameterized by the target mean and the log-space sigma.
    """

    mean_packets: float = 20.0
    sigma: float = 1.5

    def __post_init__(self) -> None:
        if self.mean_packets < 1:
            raise ValueError("mean_packets must be >= 1")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @property
    def mean(self) -> float:
        return self.mean_packets

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        # E[lognormal(mu, sigma)] = exp(mu + sigma^2 / 2).
        mu = np.log(self.mean_packets) - self.sigma**2 / 2
        sizes = rng.lognormal(mean=mu, sigma=self.sigma, size=count)
        return np.maximum(1, np.rint(sizes)).astype(np.int64)


@dataclass(frozen=True)
class BoundedParetoFlowSizes(FlowSizeModel):
    """Bounded Pareto packet counts — heavy-tailed mice-and-elephants mix."""

    shape: float = 1.2
    minimum: int = 1
    maximum: int = 100_000

    def __post_init__(self) -> None:
        if self.shape <= 0:
            raise ValueError("shape must be positive")
        if not 1 <= self.minimum < self.maximum:
            raise ValueError("need 1 <= minimum < maximum")

    @property
    def mean(self) -> float:
        a, lo, hi = self.shape, float(self.minimum), float(self.maximum)
        if a == 1.0:
            return lo * np.log(hi / lo) / (1 - lo / hi)
        return (lo**a / (1 - (lo / hi) ** a)) * (a / (a - 1)) * (
            lo ** (1 - a) - hi ** (1 - a)
        )

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        a, lo, hi = self.shape, float(self.minimum), float(self.maximum)
        u = rng.random(count)
        # Inverse CDF of the bounded Pareto distribution.
        sizes = (lo**a / (1 - u * (1 - (lo / hi) ** a))) ** (1 / a)
        return np.maximum(1, np.rint(sizes)).astype(np.int64)


@dataclass(frozen=True)
class ConstantFlowSizes(FlowSizeModel):
    """Every flow has exactly ``packets`` packets (deterministic tests)."""

    packets: int = 10

    def __post_init__(self) -> None:
        if self.packets < 1:
            raise ValueError("packets must be >= 1")

    @property
    def mean(self) -> float:
        return float(self.packets)

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.full(count, self.packets, dtype=np.int64)


class EmpiricalFlowSizes(FlowSizeModel):
    """Resample sizes from an observed population (bootstrap)."""

    def __init__(self, sizes: Sequence[int] | np.ndarray) -> None:
        sizes = np.asarray(sizes, dtype=np.int64)
        if sizes.size == 0:
            raise ValueError("empty size population")
        if np.any(sizes < 1):
            raise ValueError("sizes must be >= 1 packet")
        self._sizes = sizes

    @property
    def mean(self) -> float:
        return float(self._sizes.mean())

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.choice(self._sizes, size=count, replace=True)


def mean_inverse_size(sizes: Iterable[int] | np.ndarray) -> float:
    """``E[1/S]`` over an observed size population.

    This is the constant ``c`` of the utility function (§IV-C): the
    paper's Figure 1 uses values around 0.002 (average size ~500).
    """
    sizes = np.asarray(list(sizes) if not isinstance(sizes, np.ndarray) else sizes)
    if sizes.size == 0:
        raise ValueError("empty size population")
    if np.any(sizes <= 0):
        raise ValueError("sizes must be positive")
    return float(np.mean(1.0 / sizes))


def generate_flows(
    od_index: int,
    target_packets: int,
    size_model: FlowSizeModel,
    rng: np.random.Generator,
    interval_seconds: float = 300.0,
    first_flow_id: int = 0,
) -> list[Flow]:
    """Generate flows for one OD pair totalling ~``target_packets``.

    Draws flow sizes from ``size_model`` until the cumulative packet
    count reaches ``target_packets``, truncating the last flow so the
    total is exact.  Start times are uniform over the interval; flow
    duration grows with size (1 s per 100 packets, capped at the
    interval), a crude but adequate stand-in for real flow durations.
    """
    if target_packets < 0:
        raise ValueError("target_packets must be non-negative")
    flows: list[Flow] = []
    remaining = int(target_packets)
    flow_id = first_flow_id
    while remaining > 0:
        batch = size_model.sample(rng, max(8, remaining // max(1, int(size_model.mean))))
        for size in batch:
            size = int(min(size, remaining))
            if size <= 0:
                break
            start = float(rng.uniform(0.0, interval_seconds))
            duration = min(interval_seconds - start, 1.0 + size / 100.0)
            flows.append(
                Flow(
                    flow_id=flow_id,
                    od_index=od_index,
                    packets=size,
                    bytes=size * _MEAN_PACKET_BYTES,
                    start_time=start,
                    end_time=start + duration,
                )
            )
            flow_id += 1
            remaining -= size
            if remaining <= 0:
                break
    return flows
