"""Link loads ``U_i`` from a traffic matrix and routing.

In the paper the loads come from GEANT's NetFlow measurements; here
they are computed by routing a (gravity or explicit) traffic matrix
over the topology.  Loads are what the capacity constraint
``Σ p_i U_i = θ`` prices: sampling a heavily loaded link consumes more
of the system budget.
"""

from __future__ import annotations

import numpy as np

from ..routing.routing_matrix import ODPair, RoutingMatrix
from ..routing.shortest_path import ShortestPathRouter
from ..topology.graph import Network
from .matrix import TrafficMatrix

__all__ = ["link_loads_from_traffic", "add_od_loads", "utilizations"]


def link_loads_from_traffic(
    net: Network,
    tm: TrafficMatrix,
    router: ShortestPathRouter | None = None,
) -> np.ndarray:
    """Route ``tm`` over ``net`` and return per-link loads in pkt/s.

    The result is a dense vector aligned with link indices.
    """
    if tm.network is not net:
        raise ValueError("traffic matrix belongs to a different network")
    router = router or ShortestPathRouter(net)
    loads = np.zeros(net.num_links)
    for (origin, destination), pps in tm.items():
        path = router.path(origin, destination)
        for index in path.link_indices:
            loads[index] += pps
    return loads


def add_od_loads(
    loads: np.ndarray, routing: RoutingMatrix, od_sizes_pps: np.ndarray
) -> np.ndarray:
    """Add measurement-task OD traffic onto background link loads.

    ``loads`` is a per-link background vector; ``od_sizes_pps`` aligns
    with ``routing.od_pairs``.  Returns a new vector.
    """
    loads = np.asarray(loads, dtype=float)
    od_sizes_pps = np.asarray(od_sizes_pps, dtype=float)
    if loads.shape != (routing.num_links,):
        raise ValueError(
            f"loads vector has {loads.shape}, expected ({routing.num_links},)"
        )
    if od_sizes_pps.shape != (routing.num_od_pairs,):
        raise ValueError(
            f"od sizes have {od_sizes_pps.shape}, expected "
            f"({routing.num_od_pairs},)"
        )
    if np.any(od_sizes_pps < 0):
        raise ValueError("OD sizes must be non-negative")
    return loads + routing.matrix.T @ od_sizes_pps


def utilizations(net: Network, loads: np.ndarray) -> np.ndarray:
    """Per-link load/capacity ratios (sanity metric, not used by solver)."""
    loads = np.asarray(loads, dtype=float)
    capacities = np.array([link.capacity_pps for link in net.links])
    if loads.shape != capacities.shape:
        raise ValueError("loads vector does not match link count")
    return loads / capacities
