"""Traffic and topology dynamics.

The paper's opening motivation (§I): "a static placement of monitors
cannot be optimal given the short-term and long-term variations in
traffic due to re-routing events, anomalies and the normal network
evolution."  This module generates exactly those variations as
transformations of a :class:`MeasurementTask`, so the re-optimization
experiments can quantify the claim:

* :func:`scale_diurnal` — smooth time-of-day load modulation;
* :func:`inject_anomaly` — a sudden spike on one OD pair;
* :func:`fail_link` — remove a duplex circuit, re-route every OD pair
  and recompute the link loads (an IGP reconvergence event).
"""

from __future__ import annotations

import math

import numpy as np

from ..routing.routing_matrix import RoutingMatrix
from ..routing.shortest_path import ShortestPathRouter
from ..topology.graph import Network
from .workloads import MeasurementTask

__all__ = ["scale_diurnal", "inject_anomaly", "fail_link", "diurnal_factor"]


def diurnal_factor(hour_of_day: float, trough: float = 0.4) -> float:
    """Smooth diurnal load multiplier in ``[trough, 1]``.

    A sinusoid peaking at 15:00 and bottoming at 03:00 — the classic
    backbone shape.  ``trough`` sets the overnight fraction of the
    daily peak.
    """
    if not 0.0 < trough <= 1.0:
        raise ValueError("trough must be in (0, 1]")
    phase = math.cos((hour_of_day - 15.0) / 24.0 * 2.0 * math.pi)
    return trough + (1.0 - trough) * (phase + 1.0) / 2.0


def scale_diurnal(task: MeasurementTask, hour_of_day: float, trough: float = 0.4) -> MeasurementTask:
    """Scale all traffic (OD sizes and loads) to a time of day."""
    factor = diurnal_factor(hour_of_day, trough=trough)
    return MeasurementTask(
        network=task.network,
        routing=task.routing,
        od_sizes_pps=task.od_sizes_pps * factor,
        link_loads_pps=task.link_loads_pps * factor,
        interval_seconds=task.interval_seconds,
        access_node=task.access_node,
    )


def inject_anomaly(
    task: MeasurementTask, od_index: int, magnitude: float
) -> MeasurementTask:
    """Multiply one OD pair's traffic by ``magnitude`` (a flash event).

    The extra traffic is added to every link on the pair's path, as a
    real volume anomaly would be.
    """
    if magnitude <= 0:
        raise ValueError("magnitude must be positive")
    if not 0 <= od_index < task.num_od_pairs:
        raise IndexError(f"od_index {od_index} out of range")
    sizes = task.od_sizes_pps.copy()
    extra = sizes[od_index] * (magnitude - 1.0)
    sizes[od_index] += extra
    loads = task.link_loads_pps + task.routing.matrix[od_index] * extra
    return MeasurementTask(
        network=task.network,
        routing=task.routing,
        od_sizes_pps=sizes,
        link_loads_pps=loads,
        interval_seconds=task.interval_seconds,
        access_node=task.access_node,
    )


def fail_link(task: MeasurementTask, node_a: str, node_b: str) -> MeasurementTask:
    """Fail the duplex circuit ``node_a <-> node_b`` and re-route.

    Rebuilds the topology without the circuit (both directions),
    re-routes every OD pair on the survivor network, and moves each
    affected pair's traffic from its old path to its new one in the
    link-load vector.  Background traffic that crossed the failed link
    is re-routed the same way only for the task's OD pairs; the rest of
    the background is carried over unchanged on surviving links —
    adequate for placement experiments, where the task pairs dominate
    the loads on their own paths.

    Raises ``ValueError`` when the failure disconnects an OD pair.
    """
    old_net = task.network
    old_forward = old_net.link_between(node_a, node_b)
    old_backward = old_net.link_between(node_b, node_a)

    survivor = Network(f"{old_net.name}-minus-{node_a}-{node_b}")
    for node in old_net.nodes:
        survivor.add_node(node.name, region=node.region)
    index_map: dict[int, int] = {}
    for link in old_net.links:
        if link.index in (old_forward.index, old_backward.index):
            continue
        new_link = survivor.add_link(
            link.src, link.dst, capacity_pps=link.capacity_pps, weight=link.weight
        )
        index_map[link.index] = new_link.index

    # Carry surviving background loads over (minus the task traffic,
    # which is re-added on the new paths below).
    task_loads = task.routing.matrix.T @ task.od_sizes_pps
    background = task.link_loads_pps - task_loads
    loads = np.zeros(survivor.num_links)
    for old_index, new_index in index_map.items():
        loads[new_index] = max(0.0, float(background[old_index]))

    router = ShortestPathRouter(survivor)
    try:
        routing = RoutingMatrix.from_shortest_paths(
            survivor, task.routing.od_pairs, router=router
        )
    except ValueError as exc:
        raise ValueError(
            f"failing {node_a}<->{node_b} disconnects a task OD pair"
        ) from exc
    loads = loads + routing.matrix.T @ task.od_sizes_pps

    return MeasurementTask(
        network=survivor,
        routing=routing,
        od_sizes_pps=task.od_sizes_pps.copy(),
        link_loads_pps=loads,
        interval_seconds=task.interval_seconds,
        access_node=task.access_node,
    )
