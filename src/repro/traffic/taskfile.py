"""Declarative measurement-task files.

A task file is a small JSON document describing a measurement task —
topology, OD pairs of interest with their sizes, background traffic —
so workloads can be versioned and passed to the CLI without writing
Python::

    {
      "topology": "abilene",          // built-in name or a JSON path
      "interval_seconds": 300,
      "background_pps": 200000,
      "seed": 7,
      "access_node": "NYC",
      "od_pairs": [
        {"origin": "NYC", "destination": "LAX", "pps": 5000},
        {"origin": "SEA", "destination": "ATL", "pps": 300, "label": "susp"}
      ]
    }
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Callable

from ..routing.routing_matrix import ODPair
from ..topology.graph import Network
from .workloads import MeasurementTask, make_task

__all__ = ["task_from_dict", "load_task_file"]


def task_from_dict(
    payload: dict,
    resolve_topology: Callable[[str], Network],
) -> MeasurementTask:
    """Build a :class:`MeasurementTask` from a parsed task document.

    ``resolve_topology`` maps the document's ``topology`` string to a
    :class:`Network` (built-in name or file path — the CLI supplies its
    resolver; tests can inject their own).
    """
    try:
        topology = payload["topology"]
        od_specs = payload["od_pairs"]
    except KeyError as exc:
        raise ValueError(f"task file missing required key: {exc}") from None
    if not isinstance(od_specs, list) or not od_specs:
        raise ValueError("task file needs a non-empty od_pairs list")

    net = resolve_topology(str(topology))
    od_pairs = []
    sizes = []
    for index, spec in enumerate(od_specs):
        try:
            origin = str(spec["origin"])
            destination = str(spec["destination"])
            pps = float(spec["pps"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"od_pairs[{index}] malformed: {exc}") from None
        # NaN fails every comparison, so "not > 0" (rather than "<= 0")
        # is what actually rejects it.
        if not math.isfinite(pps) or not pps > 0:
            raise ValueError(
                f"od_pairs[{index}]: pps must be a positive finite number, "
                f"got {pps!r}"
            )
        od_pairs.append(
            ODPair(origin, destination, label=str(spec.get("label", "")))
        )
        sizes.append(pps)

    background_pps = float(payload.get("background_pps", 0.0))
    if not math.isfinite(background_pps) or background_pps < 0:
        raise ValueError(
            f"background_pps must be finite and non-negative, got "
            f"{background_pps!r}"
        )
    interval_seconds = float(payload.get("interval_seconds", 300.0))
    if not math.isfinite(interval_seconds) or not interval_seconds > 0:
        raise ValueError(
            f"interval_seconds must be positive and finite, got "
            f"{interval_seconds!r}"
        )

    return make_task(
        net,
        od_pairs,
        sizes,
        background_pps=background_pps,
        interval_seconds=interval_seconds,
        seed=(int(payload["seed"]) if "seed" in payload else None),
        access_node=(
            str(payload["access_node"]) if "access_node" in payload else None
        ),
    )


def load_task_file(
    path: str | Path,
    resolve_topology: Callable[[str], Network],
) -> MeasurementTask:
    """Read and build a task from a JSON file."""
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"task file {path}: invalid JSON ({exc})") from None
    if not isinstance(payload, dict):
        raise ValueError(f"task file {path}: top level must be an object")
    return task_from_dict(payload, resolve_topology)
