"""Measurement tasks: the paper's JANET workload and generic task builder.

The evaluation task (§V-B): estimate the traffic sent by JANET (UK
research network, AS 786) to each individual GEANT PoP through the UK
PoP — 20 OD pairs spanning the whole size spectrum, from more than
30 000 pkt/s (JANET→NL) down to ~20 pkt/s (JANET→LU), traversing 22 of
GEANT's 72 unidirectional links.

The authors read OD sizes and link loads out of GEANT's NetFlow feed;
we synthesize both (DESIGN.md §2): OD sizes are fixed to a published-
spectrum-matching table whose sum equals the paper's footnoted
57 933 pkt/s, and background link loads come from a deterministic
gravity traffic matrix with PoP masses reflecting PoP size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..routing.routing_matrix import ODPair, RoutingMatrix
from ..routing.shortest_path import ShortestPathRouter
from ..topology.geant import UK_ACCESS_NODE, geant_network
from ..topology.graph import Network
from .gravity import gravity_traffic_matrix
from .link_loads import add_od_loads, link_loads_from_traffic

__all__ = [
    "MeasurementTask",
    "janet_task",
    "JANET_OD_SIZES_PPS",
    "GEANT_POP_MASSES",
    "make_task",
    "merge_tasks",
]

#: JANET OD sizes in pkt/s, in the paper's Table I destination order.
#: Calibrated to the published facts: largest (NL) > 30 000 pkt/s,
#: smallest (LU) ~ 20 pkt/s, total exactly 57 933 pkt/s (footnote 2).
JANET_OD_SIZES_PPS: dict[str, float] = {
    "NL": 30722.0,
    "NY": 12400.0,
    "DE": 5800.0,
    "SE": 3100.0,
    "CH": 1900.0,
    "FR": 1200.0,
    "PL": 800.0,
    "GR": 560.0,
    "ES": 400.0,
    "SI": 290.0,
    "IT": 210.0,
    "AT": 150.0,
    "CZ": 110.0,
    "BE": 82.0,
    "PT": 61.0,
    "HU": 45.0,
    "HR": 34.0,
    "IL": 27.0,
    "SK": 22.0,
    "LU": 20.0,
}

#: Gravity masses per GEANT PoP, reflecting relative PoP sizes (large
#: western-European PoPs and the US link, small eastern/Mediterranean
#: spokes).  Deterministic so Table I regenerates identically.
GEANT_POP_MASSES: dict[str, float] = {
    "UK": 10.0, "FR": 8.0, "DE": 10.0, "NL": 9.0, "BE": 3.0,
    "LU": 0.3, "CH": 5.0, "IT": 6.0, "ES": 4.0, "PT": 1.5,
    "AT": 3.0, "CZ": 2.0, "SK": 0.4, "PL": 2.5, "HU": 1.5,
    "SI": 0.5, "HR": 0.5, "GR": 1.5, "IL": 0.6, "SE": 5.0,
    "NY": 12.0, "IE": 1.0, "CY": 0.2,
}

#: Default network-wide background load in pkt/s.  Calibrated so the
#: optimal solution reproduces the paper's anchors: the smallest OD
#: pair's optimal effective rate is ~1 % and matching it on the access
#: link inflates the capacity by ~1.7x (footnote 2), with 10 active
#: monitors at theta = 100 000 (Table I).
_DEFAULT_BACKGROUND_PPS = 800_000.0


@dataclass(frozen=True)
class MeasurementTask:
    """Everything a measurement task contributes to the optimization.

    Attributes
    ----------
    network:
        The monitored topology.
    routing:
        Routing matrix over the task's OD pairs (the set ``F``).
    od_sizes_pps:
        Per-OD traffic in pkt/s, aligned with ``routing.od_pairs``.
    link_loads_pps:
        Total per-link loads ``U_i`` (background + task traffic).
    interval_seconds:
        Measurement-interval length (paper: 5 minutes).
    access_node:
        The PoP through which all task traffic enters, if the task has
        a single ingress (used by the access-link baseline).
    """

    network: Network
    routing: RoutingMatrix
    od_sizes_pps: np.ndarray
    link_loads_pps: np.ndarray
    interval_seconds: float = 300.0
    access_node: str | None = None

    def __post_init__(self) -> None:
        if self.od_sizes_pps.shape != (self.routing.num_od_pairs,):
            raise ValueError("od_sizes_pps does not match routing rows")
        if self.link_loads_pps.shape != (self.network.num_links,):
            raise ValueError("link_loads_pps does not match link count")
        if np.any(self.od_sizes_pps <= 0):
            raise ValueError("OD sizes must be positive")
        if np.any(self.link_loads_pps < 0):
            raise ValueError("link loads must be non-negative")
        if self.interval_seconds <= 0:
            raise ValueError("interval must be positive")
        self.od_sizes_pps.setflags(write=False)
        self.link_loads_pps.setflags(write=False)

    @property
    def num_od_pairs(self) -> int:
        return self.routing.num_od_pairs

    @property
    def od_sizes_packets(self) -> np.ndarray:
        """Per-OD sizes in packets per measurement interval (``S_k``)."""
        return self.od_sizes_pps * self.interval_seconds

    @property
    def mean_inverse_sizes(self) -> np.ndarray:
        """``c_k = E[1/S_k]`` per OD pair.

        With deterministic interval sizes this is simply ``1/S_k``; the
        utility-function machinery accepts arbitrary values estimated
        from data.
        """
        return 1.0 / self.od_sizes_packets

    @property
    def access_link_load_pps(self) -> float:
        """Load on the (external) access link: all task traffic."""
        return float(self.od_sizes_pps.sum())

    def access_link_indices(self) -> list[int]:
        """Intra-network links adjacent to the access node."""
        if self.access_node is None:
            raise ValueError("task has no single access node")
        return [link.index for link in self.network.out_links(self.access_node)]


def janet_task(
    background_pps: float = _DEFAULT_BACKGROUND_PPS,
    interval_seconds: float = 300.0,
    od_sizes_pps: dict[str, float] | None = None,
    seed: int | None = None,
) -> MeasurementTask:
    """Build the paper's JANET→GEANT-PoPs measurement task.

    Parameters
    ----------
    background_pps:
        Network-wide gravity background load.  The defaults give link
        loads with the qualitative structure of the paper's Table I
        (heavily loaded UK links, lightly loaded small-PoP spokes).
    interval_seconds:
        Measurement interval (paper: 300 s).
    od_sizes_pps:
        Override the per-destination OD sizes (pkt/s); defaults to the
        calibrated :data:`JANET_OD_SIZES_PPS`.
    seed:
        When given, perturbs the gravity masses log-normally around the
        deterministic defaults — used by the convergence experiment to
        randomize inputs.
    """
    net = geant_network()
    sizes = dict(JANET_OD_SIZES_PPS if od_sizes_pps is None else od_sizes_pps)
    unknown = [pop for pop in sizes if not net.has_node(pop)]
    if unknown:
        raise KeyError(f"OD destinations not in GEANT: {unknown}")

    od_pairs = [
        ODPair(origin=UK_ACCESS_NODE, destination=pop, label=f"JANET-{pop}")
        for pop in sizes
    ]
    router = ShortestPathRouter(net)
    routing = RoutingMatrix.from_shortest_paths(net, od_pairs, router=router)

    masses = dict(GEANT_POP_MASSES)
    if seed is not None:
        rng = np.random.default_rng(seed)
        masses = {
            pop: mass * float(rng.lognormal(0.0, 0.4))
            for pop, mass in masses.items()
        }
    background = gravity_traffic_matrix(net, background_pps, masses=masses)
    loads = link_loads_from_traffic(net, background, router=router)
    od_sizes = np.array([sizes[pop] for pop in sizes], dtype=float)
    loads = add_od_loads(loads, routing, od_sizes)

    return MeasurementTask(
        network=net,
        routing=routing,
        od_sizes_pps=od_sizes,
        link_loads_pps=loads,
        interval_seconds=interval_seconds,
        access_node=UK_ACCESS_NODE,
    )


def merge_tasks(tasks: list[MeasurementTask]) -> MeasurementTask:
    """Combine several measurement tasks over the same network.

    "Very often network operators do not have prior knowledge of the
    measurement tasks the monitoring infrastructure will have to
    perform" (§I) — and several tasks typically coexist (traffic
    engineering + a security watchlist).  Merging concatenates the
    tasks' OD-pair lists, routing rows and sizes into one task whose
    optimization shares the single system capacity θ across all of
    them.  Link loads are taken from the first task (they describe the
    network, not the task); all tasks must be built over the identical
    network object and interval.
    """
    if not tasks:
        raise ValueError("need at least one task")
    first = tasks[0]
    for task in tasks[1:]:
        if task.network is not first.network:
            raise ValueError("tasks must share the same network object")
        if task.interval_seconds != first.interval_seconds:
            raise ValueError("tasks must share the measurement interval")
    if len(tasks) == 1:
        return first

    od_pairs = [od for task in tasks for od in task.routing.od_pairs]
    if len({od.name for od in od_pairs}) != len(od_pairs):
        raise ValueError("duplicate OD-pair names across tasks")
    matrix = np.vstack([task.routing.matrix for task in tasks])
    routing = RoutingMatrix(first.network, od_pairs, matrix)
    sizes = np.concatenate([task.od_sizes_pps for task in tasks])
    access = first.access_node
    if any(task.access_node != access for task in tasks):
        access = None
    return MeasurementTask(
        network=first.network,
        routing=routing,
        od_sizes_pps=sizes,
        link_loads_pps=first.link_loads_pps.copy(),
        interval_seconds=first.interval_seconds,
        access_node=access,
    )


def make_task(
    network: Network,
    od_pairs: list[ODPair],
    od_sizes_pps: np.ndarray | list[float],
    background_pps: float = 0.0,
    interval_seconds: float = 300.0,
    seed: int | None = None,
    access_node: str | None = None,
) -> MeasurementTask:
    """Generic task builder for arbitrary topologies.

    Routes the OD pairs on shortest paths, overlays an optional gravity
    background (seeded log-normal masses), and bundles everything into
    a :class:`MeasurementTask`.
    """
    router = ShortestPathRouter(network)
    routing = RoutingMatrix.from_shortest_paths(network, od_pairs, router=router)
    od_sizes = np.asarray(od_sizes_pps, dtype=float)
    if background_pps > 0:
        background = gravity_traffic_matrix(network, background_pps, seed=seed)
        loads = link_loads_from_traffic(network, background, router=router)
    else:
        loads = np.zeros(network.num_links)
    loads = add_od_loads(loads, routing, od_sizes)
    return MeasurementTask(
        network=network,
        routing=routing,
        od_sizes_pps=od_sizes,
        link_loads_pps=loads,
        interval_seconds=interval_seconds,
        access_node=access_node,
    )
