"""Multi-interval traffic traces.

Generates a sequence of :class:`MeasurementTask` snapshots — one per
measurement interval — combining the diurnal cycle with per-OD
log-normal fluctuation noise, optionally spiced with anomaly and
failure events.  This is the workload for the closed-loop adaptive
monitoring experiments: the paper optimizes one interval; operating a
network means re-optimizing as the trace evolves (§I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .dynamics import diurnal_factor, fail_link, inject_anomaly
from .workloads import MeasurementTask

__all__ = ["TraceEvent", "TraceInterval", "generate_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """Something that happens to the network during the trace.

    ``kind`` is ``"anomaly"`` (``od_index`` spikes by ``magnitude``
    for ``duration_intervals``) or ``"failure"`` (circuit
    ``node_a <-> node_b`` goes down for ``duration_intervals``).
    """

    kind: str
    start_interval: int
    duration_intervals: int
    od_index: int = 0
    magnitude: float = 10.0
    node_a: str = ""
    node_b: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("anomaly", "failure"):
            raise ValueError(f"unknown event kind {self.kind!r}")
        if self.start_interval < 0 or self.duration_intervals < 1:
            raise ValueError("event must start at >= 0 and last >= 1 interval")
        if self.kind == "failure" and not (self.node_a and self.node_b):
            raise ValueError("failure events need both endpoints")

    def active_at(self, interval: int) -> bool:
        return (
            self.start_interval
            <= interval
            < self.start_interval + self.duration_intervals
        )


@dataclass(frozen=True)
class TraceInterval:
    """One interval of the trace."""

    index: int
    hour_of_day: float
    task: MeasurementTask
    active_events: tuple[str, ...]


def generate_trace(
    base: MeasurementTask,
    num_intervals: int,
    start_hour: float = 0.0,
    noise_sigma: float = 0.15,
    trough: float = 0.4,
    events: list[TraceEvent] | None = None,
    seed: int | None = None,
) -> Iterator[TraceInterval]:
    """Yield ``num_intervals`` snapshots of the evolving task.

    Per interval: the base OD sizes are scaled by the diurnal factor
    and multiplied by i.i.d. log-normal noise (σ = ``noise_sigma``);
    link loads are recomputed consistently (background scales with the
    diurnal factor only).  Events overlay anomalies and failures while
    active.
    """
    if num_intervals < 1:
        raise ValueError("need at least one interval")
    if noise_sigma < 0:
        raise ValueError("noise sigma must be non-negative")
    rng = np.random.default_rng(seed)
    events = events or []
    interval_hours = base.interval_seconds / 3600.0

    base_task_loads = base.routing.matrix.T @ base.od_sizes_pps
    base_background = base.link_loads_pps - base_task_loads

    for index in range(num_intervals):
        hour = (start_hour + index * interval_hours) % 24.0
        factor = diurnal_factor(hour, trough=trough)
        noise = rng.lognormal(0.0, noise_sigma, size=base.num_od_pairs)
        sizes = base.od_sizes_pps * factor * noise
        loads = base_background * factor + base.routing.matrix.T @ sizes
        task = MeasurementTask(
            network=base.network,
            routing=base.routing,
            od_sizes_pps=sizes,
            link_loads_pps=loads,
            interval_seconds=base.interval_seconds,
            access_node=base.access_node,
        )
        labels = []
        for event in events:
            if not event.active_at(index):
                continue
            if event.kind == "anomaly":
                task = inject_anomaly(task, event.od_index, event.magnitude)
                labels.append(f"anomaly[{event.od_index}]x{event.magnitude:g}")
            else:
                task = fail_link(task, event.node_a, event.node_b)
                labels.append(f"failure[{event.node_a}-{event.node_b}]")
        yield TraceInterval(
            index=index,
            hour_of_day=hour,
            task=task,
            active_events=tuple(labels),
        )
