"""Sampled-NetFlow simulator: monitor, exporter and collector.

The paper's ground-truth data is sampled NetFlow (rate 1/1000)
collected on every GEANT interface: routers classify packets into
5-tuple flows, keep a flow cache updated with *sampled* packets only,
expire entries on FIN or a 30-second idle timeout, and export records
every minute to a collector that bins them into 5-minute measurement
intervals and rescales counts by the inverse sampling rate (§V-A).

We reproduce that pipeline over the synthetic flow populations of
:mod:`repro.traffic.flows`.  Packet arrivals inside a flow are not
simulated individually; per-flow sampled-packet counts are drawn
binomially, which is exact for i.i.d. packet sampling, and sampled
packet *times* are drawn uniformly over the flow's lifetime, which is
what Poisson-ish arrivals within a flow give.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .flows import Flow

__all__ = [
    "NetFlowConfig",
    "FlowRecord",
    "NetFlowMonitor",
    "NetFlowCollector",
    "simulate_netflow_on_link",
]


@dataclass(frozen=True)
class NetFlowConfig:
    """Router-side NetFlow parameters (paper §V-A defaults)."""

    sampling_rate: float = 1.0 / 1000.0
    idle_timeout_s: float = 30.0
    export_interval_s: float = 60.0
    mean_packet_bytes: int = 500

    def __post_init__(self) -> None:
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ValueError("sampling rate must be in (0, 1]")
        if self.idle_timeout_s <= 0 or self.export_interval_s <= 0:
            raise ValueError("timeouts must be positive")


@dataclass(frozen=True)
class FlowRecord:
    """An exported NetFlow record (the fields §V-A lists).

    ``sampled_packets``/``sampled_bytes`` count sampled packets only;
    the collector multiplies by the inverse sampling rate to estimate
    the original size.
    """

    flow_id: int
    od_index: int
    link_index: int
    start_time: float
    end_time: float
    sampled_packets: int
    sampled_bytes: int
    src_as: int = 0
    dst_as: int = 0
    input_interface: int = 0
    output_interface: int = 0

    def __post_init__(self) -> None:
        if self.sampled_packets < 1:
            raise ValueError("a record exists only if >= 1 packet was sampled")
        if self.end_time < self.start_time:
            raise ValueError("record ends before it starts")


class NetFlowMonitor:
    """A sampled-NetFlow process on one link.

    ``observe`` maps a flow population to exported records: per flow, a
    binomial draw decides how many packets are sampled; if none is, the
    flow leaves no record (the sampled-NetFlow bias against small flows
    the paper warns about in §V-A).  Flows whose sampled packets are
    separated by more than the idle timeout are split into several
    records, as a real cache would.
    """

    def __init__(self, link_index: int, config: NetFlowConfig | None = None) -> None:
        self.link_index = link_index
        self.config = config or NetFlowConfig()

    def observe(
        self, flows: Iterable[Flow], rng: np.random.Generator
    ) -> list[FlowRecord]:
        """Sample a flow population and return the exported records."""
        records: list[FlowRecord] = []
        cfg = self.config
        for flow in flows:
            sampled = int(rng.binomial(flow.packets, cfg.sampling_rate))
            if sampled == 0:
                continue
            times = np.sort(
                rng.uniform(flow.start_time, max(flow.end_time, flow.start_time + 1e-9), sampled)
            )
            records.extend(self._segment(flow, times))
        return records

    def _segment(self, flow: Flow, times: np.ndarray) -> list[FlowRecord]:
        """Split sampled-packet times into records.

        A new record starts at an idle-timeout gap (cache expiry) or at
        an export-interval boundary (routers export active flows every
        ``export_interval_s``; the next packet then opens a new record).
        """
        cfg = self.config
        segments: list[tuple[int, int]] = []
        seg_start = 0
        for i in range(1, len(times)):
            idle_gap = times[i] - times[i - 1] > cfg.idle_timeout_s
            export_boundary = (
                times[i] // cfg.export_interval_s
                != times[seg_start] // cfg.export_interval_s
            )
            if idle_gap or export_boundary:
                segments.append((seg_start, i))
                seg_start = i
        segments.append((seg_start, len(times)))

        bytes_per_packet = flow.bytes / flow.packets
        records = []
        for lo, hi in segments:
            count = hi - lo
            records.append(
                FlowRecord(
                    flow_id=flow.flow_id,
                    od_index=flow.od_index,
                    link_index=self.link_index,
                    start_time=float(times[lo]),
                    end_time=float(times[hi - 1]),
                    sampled_packets=count,
                    sampled_bytes=int(round(count * bytes_per_packet)),
                )
            )
        return records


@dataclass
class NetFlowCollector:
    """Collector-side post-processing (§V-A).

    Aggregates records into measurement bins by *start time*, and
    rescales sampled counts by the inverse sampling rate.  The result —
    per-bin, per-OD estimated packet counts — is what the paper treats
    as "the actual traffic traversing the GEANT network".
    """

    sampling_rate: float = 1.0 / 1000.0
    bin_seconds: float = 300.0
    _records: list[FlowRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ValueError("sampling rate must be in (0, 1]")
        if self.bin_seconds <= 0:
            raise ValueError("bin size must be positive")

    def ingest(self, records: Iterable[FlowRecord]) -> None:
        """Receive exported records from monitors."""
        self._records.extend(records)

    @property
    def num_records(self) -> int:
        return len(self._records)

    def bin_of(self, record: FlowRecord) -> int:
        """Measurement-bin index of a record (by start time)."""
        return int(record.start_time // self.bin_seconds)

    def _binned_deduplicated(
        self, bin_index: int, deduplicate: bool
    ) -> list[FlowRecord]:
        records = [r for r in self._records if self.bin_of(r) == bin_index]
        if not deduplicate:
            return records
        best: dict[int, list[FlowRecord]] = {}
        for record in records:
            chosen = best.get(record.flow_id)
            if chosen is None or record.link_index < chosen[0].link_index:
                best[record.flow_id] = [record]
            elif record.link_index == chosen[0].link_index:
                chosen.append(record)
        return [r for chosen in best.values() for r in chosen]

    def _accumulate(
        self,
        field: str,
        num_od_pairs: int,
        bin_index: int,
        deduplicate: bool,
    ) -> np.ndarray:
        if num_od_pairs < 1:
            raise ValueError("need at least one OD pair")
        sizes = np.zeros(num_od_pairs)
        for record in self._binned_deduplicated(bin_index, deduplicate):
            if record.od_index >= num_od_pairs:
                raise IndexError(
                    f"record references OD {record.od_index} >= {num_od_pairs}"
                )
            sizes[record.od_index] += getattr(record, field)
        return sizes / self.sampling_rate

    def estimated_od_sizes(
        self, num_od_pairs: int, bin_index: int = 0, deduplicate: bool = True
    ) -> np.ndarray:
        """Estimated per-OD packet counts for one measurement bin.

        With ``deduplicate`` (the paper's assumption that duplicates
        across monitors can be discerned) each ``(flow_id, link)``
        contributes once and multi-link duplicates of the same flow are
        collapsed by keeping the record from the lowest link index,
        mimicking trajectory-style packet identification.
        """
        return self._accumulate(
            "sampled_packets", num_od_pairs, bin_index, deduplicate
        )

    def estimated_od_bytes(
        self, num_od_pairs: int, bin_index: int = 0, deduplicate: bool = True
    ) -> np.ndarray:
        """Estimated per-OD byte counts (same pipeline as packets).

        Byte counts are what traffic-engineering applications consume
        (§V-A exports both); the inverse-rate rescaling applies
        identically because bytes ride on sampled packets.
        """
        return self._accumulate(
            "sampled_bytes", num_od_pairs, bin_index, deduplicate
        )


def simulate_netflow_on_link(
    link_index: int,
    flows: Sequence[Flow],
    rng: np.random.Generator,
    config: NetFlowConfig | None = None,
) -> list[FlowRecord]:
    """One-shot convenience wrapper: monitor a flow population once."""
    return NetFlowMonitor(link_index, config=config).observe(flows, rng)
