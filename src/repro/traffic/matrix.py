"""Traffic matrices: origin-destination demands in packets per second."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..topology.graph import Network

__all__ = ["TrafficMatrix"]


class TrafficMatrix:
    """A sparse OD demand matrix over a network's node set.

    Demands are expressed in packets per second, the unit the paper uses
    for both OD sizes and link loads (Table I).  Zero demands are not
    stored.
    """

    def __init__(
        self,
        network: Network,
        demands: Mapping[tuple[str, str], float] | None = None,
    ) -> None:
        self._network = network
        self._demands: dict[tuple[str, str], float] = {}
        if demands:
            for (origin, destination), pps in demands.items():
                self.set_demand(origin, destination, pps)

    @property
    def network(self) -> Network:
        return self._network

    def set_demand(self, origin: str, destination: str, pps: float) -> None:
        """Set the demand ``origin -> destination``; 0 removes the entry."""
        self._network.node(origin)
        self._network.node(destination)
        if origin == destination:
            raise ValueError("intra-node demand is not routed")
        if pps < 0:
            raise ValueError(f"negative demand {pps}")
        key = (origin, destination)
        if pps == 0:
            self._demands.pop(key, None)
        else:
            self._demands[key] = float(pps)

    def add_demand(self, origin: str, destination: str, pps: float) -> None:
        """Accumulate onto an existing demand."""
        current = self.demand(origin, destination)
        self.set_demand(origin, destination, current + pps)

    def demand(self, origin: str, destination: str) -> float:
        """Demand in pkt/s (0 when unset)."""
        return self._demands.get((origin, destination), 0.0)

    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with every demand multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return TrafficMatrix(
            self._network,
            {key: pps * factor for key, pps in self._demands.items()},
        )

    def merged(self, other: "TrafficMatrix") -> "TrafficMatrix":
        """Element-wise sum of two matrices over the same network."""
        if other.network is not self._network:
            raise ValueError("cannot merge matrices over different networks")
        merged = TrafficMatrix(self._network, self._demands)
        for (origin, destination), pps in other.items():
            merged.add_demand(origin, destination, pps)
        return merged

    def items(self) -> Iterator[tuple[tuple[str, str], float]]:
        """Iterate ``((origin, destination), pps)`` pairs, sorted."""
        return iter(sorted(self._demands.items()))

    def pairs(self) -> Iterable[tuple[str, str]]:
        return sorted(self._demands.keys())

    @property
    def total_pps(self) -> float:
        """Network-wide offered load in pkt/s."""
        return sum(self._demands.values())

    def __len__(self) -> int:
        return len(self._demands)

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._demands

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TrafficMatrix({self._network.name!r}, pairs={len(self)}, "
            f"total={self.total_pps:.0f} pkt/s)"
        )
