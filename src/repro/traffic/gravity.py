"""Gravity-model traffic matrix generation.

The standard synthetic model for backbone traffic matrices (used
throughout the traffic-matrix-estimation literature the paper cites,
e.g. Zhang et al., Sigmetrics 2003): the demand from node ``i`` to node
``j`` is proportional to the product of their activity masses,

    t_{ij} = total * m_i * m_j / (Σ_{u != v} m_u * m_v).

Masses are drawn log-normally (PoP sizes are heavy-tailed) or supplied
by the caller.  We use gravity matrices to synthesize the *background*
traffic that sets link loads ``U_i`` — the quantity that, in the paper,
comes from GEANT's NetFlow measurements (substitution documented in
DESIGN.md §2).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..topology.graph import Network
from .matrix import TrafficMatrix

__all__ = ["gravity_traffic_matrix", "lognormal_node_masses"]


def lognormal_node_masses(
    net: Network, seed: int | None = None, sigma: float = 1.0
) -> dict[str, float]:
    """Draw a log-normal activity mass for every node.

    ``sigma`` controls skew: 0 gives uniform masses, ~1 gives the
    order-of-magnitude PoP-size spread seen in real backbones.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    rng = np.random.default_rng(seed)
    masses = rng.lognormal(mean=0.0, sigma=sigma, size=net.num_nodes)
    return {node.name: float(mass) for node, mass in zip(net.nodes, masses)}


def gravity_traffic_matrix(
    net: Network,
    total_pps: float,
    masses: Mapping[str, float] | None = None,
    seed: int | None = None,
) -> TrafficMatrix:
    """Build a gravity-model :class:`TrafficMatrix`.

    Parameters
    ----------
    net:
        The topology whose nodes exchange traffic.
    total_pps:
        Network-wide offered load; the returned matrix sums to this.
    masses:
        Optional per-node activity masses; drawn log-normally (with
        ``seed``) when omitted.  Nodes with mass 0 neither send nor
        receive.
    seed:
        Seed for the mass draw when ``masses`` is omitted.
    """
    if total_pps < 0:
        raise ValueError("total_pps must be non-negative")
    if net.num_nodes < 2:
        raise ValueError("need at least two nodes to exchange traffic")
    if masses is None:
        masses = lognormal_node_masses(net, seed=seed)
    else:
        unknown = set(masses) - set(net.node_names)
        if unknown:
            raise KeyError(f"masses for unknown nodes: {sorted(unknown)}")
        if any(m < 0 for m in masses.values()):
            raise ValueError("masses must be non-negative")

    names = net.node_names
    m = np.array([float(masses.get(name, 0.0)) for name in names])
    product = np.outer(m, m)
    np.fill_diagonal(product, 0.0)
    denom = product.sum()

    tm = TrafficMatrix(net)
    if total_pps == 0 or denom == 0:
        return tm
    for i, origin in enumerate(names):
        for j, destination in enumerate(names):
            if i == j or product[i, j] == 0:
                continue
            tm.set_demand(origin, destination, total_pps * product[i, j] / denom)
    return tm
