"""Fault-tolerant execution layer for the solve stack.

Modeling robustness (scenario sets, :mod:`repro.core.robust`) answers
"what if the *network* fails"; this package answers "what if the
*solver runtime* fails" — a worker SIGKILLed mid-batch, a solve that
hangs past its interval budget, telemetry that crashes the exact
method.  Three pieces:

``repro.resilience.supervisor``
    :func:`supervised_solve` — per-attempt wall-clock timeouts,
    bounded jittered retries, and a declarative fallback chain
    (gradient projection → SciPy reference → feasible uniform point)
    with every attempt recorded in ``SolverDiagnostics.attempts`` and
    the ``resilience.*`` counters.
``repro.resilience.checkpoint``
    :class:`SweepCheckpoint` — durable JSONL checkpoints of completed
    sweep members, so an interrupted θ sweep resumes warm and
    reproduces the uninterrupted result bit for bit.
``repro.resilience.faults``
    Deterministic, seeded fault injection (solve raises/hangs, worker
    exits, shm attach failures) used by the chaos tests and the CLI's
    ``--chaos`` mode.

The crash-safe batch pool itself lives in :mod:`repro.core.batch`
(dead-worker detection, task re-queue, inline degradation) and the
leak-proof shared-memory registry in :mod:`repro.core.shm`; both
consult this package's fault plans.
"""

from .checkpoint import CheckpointMismatchError, SweepCheckpoint
from .faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SITE_SHM_ATTACH,
    SITE_SOLVE_HANG,
    SITE_SOLVE_RAISE,
    SITE_WORKER_EXIT,
    active_plan,
    chaos_plan,
    clear_faults,
    injected_faults,
    install_faults,
    maybe_fire,
)
from .supervisor import (
    FALLBACK_STAGES,
    SolveTimeoutError,
    SupervisorError,
    SupervisorPolicy,
    fallback_stages,
    supervise_stages,
    supervised_solve,
)

__all__ = [
    # supervisor
    "SupervisorPolicy",
    "supervised_solve",
    "supervise_stages",
    "fallback_stages",
    "SolveTimeoutError",
    "SupervisorError",
    "FALLBACK_STAGES",
    # checkpoints
    "SweepCheckpoint",
    "CheckpointMismatchError",
    # fault injection
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "chaos_plan",
    "install_faults",
    "clear_faults",
    "active_plan",
    "injected_faults",
    "maybe_fire",
    "SITE_SOLVE_RAISE",
    "SITE_SOLVE_HANG",
    "SITE_WORKER_EXIT",
    "SITE_SHM_ATTACH",
]
