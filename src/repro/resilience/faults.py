"""Deterministic fault injection for chaos testing the solve stack.

Production failure modes — a solver raising on bad telemetry, a solve
that never returns, a pool worker SIGKILLed by the OOM killer, a
shared-memory attach racing a cleanup — are rare and timing-dependent,
which makes the recovery paths the least-tested code in the tree.
This module makes them *reproducible*: a :class:`FaultPlan` is a
seeded, picklable schedule of failure points that instrumented call
sites consult via :func:`maybe_fire`.  With no plan installed the
check is one module-global read, so production solves pay nothing.

Failure points (``SITE_*`` constants):

``solve.raise``
    The solve attempt raises :class:`InjectedFault` before running.
``solve.hang``
    The solve attempt sleeps ``hang_seconds`` before proceeding —
    long enough to trip a supervisor timeout, short enough that the
    abandoned watchdog thread drains quickly.
``worker.exit``
    A pool worker dies via ``os._exit`` (indistinguishable from a
    SIGKILL to the parent: the pool breaks, the task result is lost).
``shm.attach``
    A shared-memory attach raises :class:`InjectedFault` — the
    segment-vanished / permissions race.
``serve.queue_full``
    The daemon's admission controller behaves as if the high
    watermark had tripped: the request is shed with a structured
    ``overloaded`` error, without generating real load.
``serve.slow_solve``
    A serve-layer solve sleeps ``hang_seconds`` before running — long
    enough to back up the executor queue, trip per-request deadlines
    and exercise the drain path with genuinely in-flight work.
``serve.client_disconnect``
    The connection to the requesting client is aborted just before
    the response write — the server-side view of a client that died
    mid-solve (the orphan-completion path).

Scheduling is either *occurrence-keyed* (the N-th time the site is
consulted in this process fires — natural for sequential supervised
solves) or *index-keyed* (fires for specific task indices, and only on
a task's first attempt — natural for pool tasks, where retries land in
fresh worker processes whose occurrence counters restart).  Plans
travel to pool workers inside task payloads, so the schedule is
deterministic under ``fork``, ``forkserver`` and ``spawn`` alike.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from typing import Iterator

from ..obs.logsetup import get_logger
from ..obs.metrics import METRICS

logger = get_logger(__name__)

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "chaos_plan",
    "install_faults",
    "clear_faults",
    "active_plan",
    "injected_faults",
    "maybe_fire",
    "SITE_SOLVE_RAISE",
    "SITE_SOLVE_HANG",
    "SITE_WORKER_EXIT",
    "SITE_SHM_ATTACH",
    "SITE_SERVE_QUEUE_FULL",
    "SITE_SERVE_SLOW_SOLVE",
    "SITE_SERVE_CLIENT_DISCONNECT",
]

SITE_SOLVE_RAISE = "solve.raise"
SITE_SOLVE_HANG = "solve.hang"
SITE_WORKER_EXIT = "worker.exit"
SITE_SHM_ATTACH = "shm.attach"
SITE_SERVE_QUEUE_FULL = "serve.queue_full"
SITE_SERVE_SLOW_SOLVE = "serve.slow_solve"
SITE_SERVE_CLIENT_DISCONNECT = "serve.client_disconnect"

_SITES = (
    SITE_SOLVE_RAISE,
    SITE_SOLVE_HANG,
    SITE_WORKER_EXIT,
    SITE_SHM_ATTACH,
    SITE_SERVE_QUEUE_FULL,
    SITE_SERVE_SLOW_SOLVE,
    SITE_SERVE_CLIENT_DISCONNECT,
)

#: Exit status used by injected worker deaths; tests can recognise it.
WORKER_EXIT_STATUS = 113


class InjectedFault(RuntimeError):
    """An artificial failure raised by the fault-injection harness."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled failure point.

    ``hits`` are the occurrence numbers (``key="occurrence"``, counted
    per process from 0) or task indices (``key="index"``) at which the
    site fires.  Index-keyed specs fire only on ``attempt == 0`` so a
    re-queued task succeeds — retries of a pool task run in fresh
    worker processes where an occurrence counter could not express
    "fire once".
    """

    site: str
    hits: frozenset[int]
    key: str = "occurrence"
    hang_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ValueError(f"unknown fault site {self.site!r}; pick from {_SITES}")
        if self.key not in ("occurrence", "index"):
            raise ValueError("key must be 'occurrence' or 'index'")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")
        object.__setattr__(self, "hits", frozenset(int(h) for h in self.hits))


@dataclass
class FaultPlan:
    """A set of :class:`FaultSpec` plus per-process occurrence counters.

    Picklable (counters reset on unpickle via ``__reduce__`` not being
    needed — workers install a fresh copy, and occurrence counters are
    deliberately process-local).
    """

    specs: tuple[FaultSpec, ...] = ()
    _occurrences: dict[str, int] = field(default_factory=dict, repr=False)

    def __getstate__(self) -> dict:
        return {"specs": self.specs}

    def __setstate__(self, state: dict) -> None:
        self.specs = state["specs"]
        self._occurrences = {}

    def spec_for(self, site: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None

    def should_fire(self, site: str, index: int | None, attempt: int) -> FaultSpec | None:
        """Consume one consultation of ``site``; the firing spec or None."""
        spec = self.spec_for(site)
        if spec is None:
            return None
        if spec.key == "index":
            if index is None:
                return None
            return spec if (index in spec.hits and attempt == 0) else None
        occurrence = self._occurrences.get(site, 0)
        self._occurrences[site] = occurrence + 1
        return spec if occurrence in spec.hits else None


def chaos_plan(
    seed: int,
    num_tasks: int,
    hang_seconds: float = 1.0,
    kill_worker: bool = True,
    hang_solve: bool = True,
) -> FaultPlan:
    """The standard chaos schedule: one worker kill + one solver hang.

    The killed task index and the hanging solve occurrence are drawn
    deterministically from ``seed``, so a chaos run is reproducible
    bit for bit.
    """
    if num_tasks < 1:
        raise ValueError("need at least one task to schedule faults over")
    rng = Random(seed)
    specs: list[FaultSpec] = []
    if kill_worker:
        specs.append(
            FaultSpec(
                site=SITE_WORKER_EXIT,
                hits=frozenset({rng.randrange(num_tasks)}),
                key="index",
            )
        )
    if hang_solve:
        specs.append(
            FaultSpec(
                site=SITE_SOLVE_HANG,
                hits=frozenset({rng.randrange(num_tasks)}),
                key="occurrence",
                hang_seconds=hang_seconds,
            )
        )
    return FaultPlan(specs=tuple(specs))


#: The process-wide installed plan (None = injection disabled).
_ACTIVE: FaultPlan | None = None


def install_faults(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` process-wide (replacing any previous plan)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def clear_faults() -> None:
    """Disable fault injection in this process."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _ACTIVE


@contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` within a scope, restoring the previous plan after."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def maybe_fire(site: str, index: int | None = None, attempt: int = 0) -> None:
    """Consult the installed plan at ``site``; act if scheduled.

    No-op (one global read) when no plan is installed.  Actions:
    ``solve.raise`` / ``shm.attach`` raise :class:`InjectedFault`,
    ``solve.hang`` sleeps ``hang_seconds``, ``worker.exit`` terminates
    the process with :data:`WORKER_EXIT_STATUS` — bypassing cleanup
    handlers, exactly like a SIGKILL would.
    """
    plan = _ACTIVE
    if plan is None:
        return
    spec = plan.should_fire(site, index, attempt)
    if spec is None:
        return
    METRICS.increment(f"faults.injected.{site}")
    logger.warning(
        "injected fault at %s (index=%s, attempt=%d)", site, index, attempt
    )
    if site == SITE_WORKER_EXIT:
        os._exit(WORKER_EXIT_STATUS)
    if site in (SITE_SOLVE_HANG, SITE_SERVE_SLOW_SOLVE):
        time.sleep(spec.hang_seconds)
        return
    raise InjectedFault(f"injected fault at {site}")
