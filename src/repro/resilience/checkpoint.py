"""Crash-safe sweep checkpoints: JSONL of completed (θ, rates) entries.

A long capacity sweep (hundreds of θ points on a backbone topology)
that dies at point 180 should not recompute points 0–179.  A
:class:`SweepCheckpoint` appends one JSON line per completed member —
flushed and fsynced, so a SIGKILL loses at most the in-flight solve —
and on restart restores the completed prefix and re-seeds the warm
chain from the last finished optimum, which makes a resumed sweep
**bitwise identical** to an uninterrupted one (each member's warm
start is exactly what it would have been).

Rates are stored as JSON floats; Python's ``repr``-based float
serialization round-trips IEEE-754 doubles exactly, so restored rate
vectors are bit-for-bit equal to the originals.  Restored members get
their KKT certificate recomputed against the *restored* rates — the
certificate is a function of the point, so a corrupt checkpoint shows
up as a failed certificate, not a silently wrong curve.

File grammar (one JSON object per line)::

    {"record": "sweep", "schema_version": 1, "num_links": L,
     "thetas": [...], "method": ..., "extra": {...}}
    {"record": "entry", "index": 3, "theta_packets": ...,
     "rates": [...], "diagnostics": {...}}

A checkpoint whose header does not match the requested sweep (other
thetas, another topology size) is rejected loudly — resuming a
different sweep from it would silently produce the wrong curve.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.kkt import check_kkt
from ..core.problem import SamplingProblem
from ..core.solution import SamplingSolution, SolverDiagnostics
from ..obs.logsetup import get_logger
from ..obs.metrics import METRICS

logger = get_logger(__name__)

__all__ = ["CheckpointMismatchError", "SweepCheckpoint"]

SCHEMA_VERSION = 1


class CheckpointMismatchError(ValueError):
    """The checkpoint on disk describes a different sweep."""


class SweepCheckpoint:
    """Append-only JSONL checkpoint for one θ sweep.

    Open with the sweep's coordinates (``thetas``, ``num_links``,
    ``method``); :meth:`load` returns the completed prefix found on
    disk (validating the header), :meth:`append` records one finished
    member durably.  The same path may be reused across interrupted
    runs — entries accumulate until the sweep completes.
    """

    def __init__(
        self,
        path: str | Path,
        thetas: Sequence[float],
        num_links: int,
        method: str = "gradient_projection",
    ) -> None:
        self.path = Path(path)
        self._thetas = [float(t) for t in thetas]
        self._num_links = int(num_links)
        self._method = method

    # ------------------------------------------------------------------
    def load(self) -> dict[int, dict]:
        """Completed entries by sweep index (empty when starting fresh).

        Raises :class:`CheckpointMismatchError` when the file belongs
        to a different sweep, and ``ValueError`` on corrupt JSON.  A
        truncated final line (the crash happened mid-append) is
        dropped with a warning — it is exactly the in-flight loss the
        format tolerates.
        """
        if not self.path.exists():
            return {}
        entries: dict[int, dict] = {}
        header: dict | None = None
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        for lineno, raw in enumerate(lines, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    logger.warning(
                        "checkpoint %s: dropping truncated final line %d",
                        self.path, lineno,
                    )
                    # Remove the partial tail from disk as well: a later
                    # append must start on a clean line boundary, or the
                    # leftover bytes would fuse with the next entry and
                    # surface as *interior* corruption after a second
                    # crash.
                    self._truncate_partial_tail()
                    continue
                raise ValueError(
                    f"checkpoint {self.path}:{lineno}: corrupt JSON"
                ) from None
            kind = payload.get("record")
            if kind == "sweep":
                header = payload
                self._validate_header(payload)
            elif kind == "entry":
                index = int(payload["index"])
                if not 0 <= index < len(self._thetas):
                    raise CheckpointMismatchError(
                        f"checkpoint {self.path}: entry index {index} outside "
                        f"the {len(self._thetas)}-point sweep"
                    )
                entries[index] = payload
            else:
                raise ValueError(
                    f"checkpoint {self.path}:{lineno}: unknown record {kind!r}"
                )
        if entries and header is None:
            raise CheckpointMismatchError(
                f"checkpoint {self.path}: entries without a sweep header"
            )
        if entries:
            METRICS.increment("resilience.checkpoint.restored", len(entries))
            logger.info(
                "checkpoint %s: restored %d of %d sweep members",
                self.path, len(entries), len(self._thetas),
            )
        return entries

    def _validate_header(self, header: dict) -> None:
        thetas = [float(t) for t in header.get("thetas", [])]
        if thetas != self._thetas:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} holds a different theta grid "
                f"({len(thetas)} points vs {len(self._thetas)} requested)"
            )
        if int(header.get("num_links", -1)) != self._num_links:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} was written for "
                f"{header.get('num_links')} links, not {self._num_links}"
            )
        if header.get("method") != self._method:
            raise CheckpointMismatchError(
                f"checkpoint {self.path} was solved with "
                f"{header.get('method')!r}, not {self._method!r}"
            )

    def _truncate_partial_tail(self) -> None:
        """Cut the file back to its last complete line (durably)."""
        data = self.path.read_bytes()
        cut = data.rfind(b"\n") + 1
        if cut < len(data):
            with self.path.open("r+b") as handle:
                handle.truncate(cut)
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    def _append_line(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def write_header(self, extra: dict | None = None) -> None:
        """Write the sweep header if the file does not exist yet."""
        if self.path.exists() and self.path.stat().st_size > 0:
            return
        self._append_line(
            {
                "record": "sweep",
                "schema_version": SCHEMA_VERSION,
                "thetas": self._thetas,
                "num_links": self._num_links,
                "method": self._method,
                "extra": extra or {},
            }
        )

    def append(self, index: int, solution: SamplingSolution) -> None:
        """Durably record one completed sweep member."""
        diagnostics = solution.diagnostics
        self._append_line(
            {
                "record": "entry",
                "index": int(index),
                "theta_packets": float(solution.problem.theta_packets),
                "rates": [float(r) for r in solution.rates],
                "diagnostics": {
                    "method": diagnostics.method,
                    "iterations": diagnostics.iterations,
                    "constraint_releases": diagnostics.constraint_releases,
                    "converged": diagnostics.converged,
                    "objective_value": diagnostics.objective_value,
                    "message": diagnostics.message,
                    "degraded": diagnostics.degraded,
                },
            }
        )
        METRICS.increment("resilience.checkpoint.entries")

    # ------------------------------------------------------------------
    def restore_solution(
        self,
        problem: SamplingProblem,
        entry: dict,
        kkt_tolerance: float = 1e-6,
    ) -> SamplingSolution:
        """Rebuild a member solution from its checkpoint entry.

        The KKT certificate is recomputed against the restored rates;
        everything else comes verbatim from the entry.
        """
        rates = np.array(entry["rates"], dtype=float)
        stored = entry.get("diagnostics", {})
        converged = bool(stored.get("converged", False))
        kkt = (
            check_kkt(problem, rates, tolerance=kkt_tolerance)
            if converged
            else None
        )
        diagnostics = SolverDiagnostics(
            method=str(stored.get("method", self._method)),
            iterations=int(stored.get("iterations", 0)),
            constraint_releases=int(stored.get("constraint_releases", 0)),
            converged=converged,
            objective_value=float(stored.get("objective_value", 0.0)),
            kkt=kkt,
            message=stored.get("message", "") or "restored from checkpoint",
            degraded=bool(stored.get("degraded", False)),
        )
        return SamplingSolution(
            problem=problem, rates=rates, diagnostics=diagnostics
        )
