"""Fault-tolerant solve supervision: timeouts, retries, fallback chain.

The paper's operational story (§V) re-optimizes on every NetFlow
interval; a production deployment therefore needs *an* answer every
interval, even when the exact solver stalls, crashes on bad telemetry,
or exceeds its time budget.  :func:`supervised_solve` wraps any solve
in that contract:

1. run the primary method under a wall-clock **timeout** (cooperative
   inside the gradient-projection loop via
   ``GradientProjectionOptions.wall_clock_limit_s``, plus a watchdog
   thread that catches non-cooperative hangs);
2. **retry** a failed/timed-out attempt with jittered exponential
   backoff, a bounded number of times;
3. walk a declarative **fallback chain** — by default the SciPy
   reference solver, then a feasible uniform configuration — so a
   degraded answer is always produced rather than no answer
   (cf. Kallitsis et al.'s cheap approximate fallbacks);
4. record every attempt in ``SolverDiagnostics.attempts`` and in the
   ``resilience.*`` counters, and mark non-exact answers
   ``degraded=True``.

Semantics of *exact* vs *degraded*: the gradient-projection and SciPy
stages solve the identical convex program, so a converged result from
any of them is the global optimum — falling back from one to the other
changes nothing but wall time, and the result stays ``degraded=False``.
The ``uniform`` stage (and an accepted non-converged final iterate)
is a feasible but sub-optimal answer and is marked degraded.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from random import Random
from time import perf_counter
from typing import Callable, Sequence

from ..core.gradient_projection import (
    GradientProjectionOptions,
    solve_gradient_projection,
)
from ..core.problem import SamplingProblem
from ..core.scipy_solver import solve_scipy
from ..core.solution import SamplingSolution, SolveAttempt, SolverDiagnostics
from ..obs.logsetup import get_logger
from ..obs.metrics import METRICS
from ..obs.spans import current_span_context, span, using_span_context
from ..obs.trace import SolverTrace
from . import faults

logger = get_logger(__name__)

__all__ = [
    "SolveTimeoutError",
    "SupervisorError",
    "SupervisorPolicy",
    "supervised_solve",
    "supervise_stages",
    "fallback_stages",
    "with_cooperative_limit",
    "FALLBACK_STAGES",
]

#: Stage names a fallback chain may reference.  ``uniform`` is the
#: terminal degraded stage: a feasible water-filled configuration that
#: cannot fail for any feasible problem.
FALLBACK_STAGES = ("gradient_projection", "slsqp", "trust-constr", "uniform")

#: Stages whose converged output is the exact global optimum.
_EXACT_STAGES = frozenset({"gradient_projection", "slsqp", "trust-constr"})


class SolveTimeoutError(RuntimeError):
    """A supervised solve attempt exceeded its wall-clock budget."""


class SupervisorError(RuntimeError):
    """Every stage of the fallback chain was exhausted without an answer."""


@dataclass(frozen=True)
class SupervisorPolicy:
    """Declarative fault-tolerance contract for supervised solves.

    ``timeout_s`` bounds each individual attempt (None = unbounded).
    ``max_retries`` is per stage, *after* the first attempt.  Backoff
    before retry ``n`` is ``backoff_s * 2**(n-1)`` scaled by a seeded
    jitter in ``[1, 1 + backoff_jitter]`` — deterministic for a given
    ``seed``, so chaos runs reproduce exactly.  ``fallbacks`` is the
    ordered chain tried after the primary method is exhausted.
    """

    timeout_s: float | None = None
    max_retries: int = 1
    backoff_s: float = 0.02
    backoff_jitter: float = 0.5
    seed: int = 0
    fallbacks: tuple[str, ...] = ("slsqp", "uniform")

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_s < 0 or self.backoff_jitter < 0:
            raise ValueError("backoff must be non-negative")
        for name in self.fallbacks:
            if name not in FALLBACK_STAGES:
                raise ValueError(
                    f"unknown fallback stage {name!r}; pick from {FALLBACK_STAGES}"
                )


def _call_with_timeout(fn: Callable[[], SamplingSolution], timeout_s: float | None):
    """Run ``fn`` with fault-injection hooks, bounded by ``timeout_s``.

    The watchdog uses a daemon thread joined with a timeout rather
    than a ``ThreadPoolExecutor`` — abandoned hung attempts must not
    block interpreter exit.  An abandoned thread keeps running until
    its hang/solve finishes; its result is discarded.
    """

    def _attempt() -> SamplingSolution:
        faults.maybe_fire(faults.SITE_SOLVE_RAISE)
        faults.maybe_fire(faults.SITE_SOLVE_HANG)
        return fn()

    if timeout_s is None:
        return _attempt()
    box: dict[str, object] = {}
    # contextvars do not flow into manually created threads, so the
    # watchdog target re-installs the caller's span ancestry — spans
    # recorded inside the attempt stay parented under the attempt span.
    span_context = current_span_context()

    def _target() -> None:
        try:
            with using_span_context(span_context):
                box["result"] = _attempt()
        except BaseException as exc:  # noqa: BLE001 - re-raised in parent
            box["error"] = exc

    thread = threading.Thread(
        target=_target, name="supervised-solve", daemon=True
    )
    thread.start()
    thread.join(timeout_s)
    if thread.is_alive():
        raise SolveTimeoutError(
            f"solve attempt exceeded its {timeout_s:g}s wall-clock budget"
        )
    error = box.get("error")
    if error is not None:
        raise error  # type: ignore[misc]
    return box["result"]


def supervise_stages(
    stages: Sequence[tuple[str, Callable[[], SamplingSolution]]],
    policy: SupervisorPolicy,
) -> SamplingSolution:
    """Run an ordered fallback chain of named solve callables.

    The engine behind :func:`supervised_solve`; exposed so callers
    with their own primary stage (the warm-started chain, the adaptive
    controller) can reuse the retry/timeout/fallback machinery.

    Attempt outcomes: an exception or timeout retries the same stage
    (up to ``policy.max_retries``); a *non-converged* result skips
    straight to the next stage — retrying a deterministic solver on
    the identical input cannot help.  A non-converged result from the
    final stage is accepted as a degraded answer (degraded answers
    beat no answers); only when every stage raises does the supervisor
    give up with :class:`SupervisorError`.
    """
    if not stages:
        raise ValueError("need at least one stage")
    attempts: list[SolveAttempt] = []
    rng = Random(policy.seed)
    last_error: BaseException | None = None
    last_nonconverged: SamplingSolution | None = None
    for stage_index, (name, fn) in enumerate(stages):
        if stage_index > 0:
            METRICS.increment("resilience.fallback")
            logger.warning(
                "falling back to stage %r after %d failed attempts",
                name, len(attempts),
            )
        for attempt in range(policy.max_retries + 1):
            if attempt > 0:
                METRICS.increment("resilience.retry")
                delay = policy.backoff_s * (2 ** (attempt - 1))
                delay *= 1.0 + policy.backoff_jitter * rng.random()
                if delay > 0:
                    time.sleep(delay)
            started = perf_counter()
            try:
                # The span exits through the exception on timeout/error,
                # so it records with status="error" for those attempts.
                with span("resilience.attempt", stage=name, attempt=attempt):
                    solution = _call_with_timeout(fn, policy.timeout_s)
            except SolveTimeoutError as exc:
                METRICS.increment("resilience.timeout")
                logger.warning("stage %r attempt %d timed out", name, attempt)
                attempts.append(
                    SolveAttempt(
                        stage=name, attempt=attempt, outcome="timeout",
                        message=str(exc),
                        wall_time_s=perf_counter() - started,
                    )
                )
                last_error = exc
                continue
            except Exception as exc:
                METRICS.increment("resilience.error")
                logger.warning(
                    "stage %r attempt %d raised: %s", name, attempt, exc
                )
                attempts.append(
                    SolveAttempt(
                        stage=name, attempt=attempt, outcome="error",
                        message=f"{type(exc).__name__}: {exc}",
                        wall_time_s=perf_counter() - started,
                    )
                )
                last_error = exc
                continue
            finally:
                METRICS.observe_histogram(
                    "resilience.attempt_seconds", perf_counter() - started
                )
            if not solution.diagnostics.converged:
                attempts.append(
                    SolveAttempt(
                        stage=name, attempt=attempt, outcome="nonconverged",
                        message=solution.diagnostics.message,
                        wall_time_s=perf_counter() - started,
                    )
                )
                last_nonconverged = solution
                break  # deterministic: a retry would not converge either
            attempts.append(
                SolveAttempt(
                    stage=name, attempt=attempt, outcome="ok",
                    wall_time_s=perf_counter() - started,
                )
            )
            return _annotate(
                solution,
                attempts,
                degraded=name not in _EXACT_STAGES,
            )
    if last_nonconverged is not None:
        METRICS.increment("resilience.accepted_nonconverged")
        return _annotate(last_nonconverged, attempts, degraded=True)
    METRICS.increment("resilience.exhausted")
    names = ", ".join(name for name, _ in stages)
    raise SupervisorError(
        f"all stages exhausted after {len(attempts)} attempts "
        f"(chain: {names})"
    ) from last_error


def _annotate(
    solution: SamplingSolution,
    attempts: Sequence[SolveAttempt],
    degraded: bool,
) -> SamplingSolution:
    """Stamp the attempt log and degradation flag onto a solution."""
    diagnostics = dataclasses.replace(
        solution.diagnostics,
        degraded=degraded or solution.diagnostics.degraded,
        attempts=tuple(attempts),
    )
    return SamplingSolution(
        problem=solution.problem, rates=solution.rates, diagnostics=diagnostics
    )


def _stage_callable(
    problem: SamplingProblem,
    name: str,
    policy: SupervisorPolicy,
    options: GradientProjectionOptions | None,
    trace: SolverTrace | None,
    presolve: bool,
    warm_start=None,
) -> Callable[[], SamplingSolution]:
    if name == "uniform":
        from ..baselines.uniform import uniform_solution

        return lambda: uniform_solution(problem)
    if name == "gradient_projection":
        gp_options = with_cooperative_limit(options, policy.timeout_s)
        if warm_start is not None or not presolve:
            return lambda: solve_gradient_projection(
                problem, options=gp_options, warm_start=warm_start, trace=trace
            )
        from ..core.solver import solve

        return lambda: solve(
            problem, method=name, options=gp_options, trace=trace,
            presolve=presolve,
        )
    scipy_method = {"slsqp": "SLSQP", "trust-constr": "trust-constr"}[name]
    return lambda: solve_scipy(problem, method=scipy_method)


def with_cooperative_limit(
    options: GradientProjectionOptions | None, timeout_s: float | None
) -> GradientProjectionOptions | None:
    """Thread the supervisor's budget into the solver's own clock.

    The gradient-projection loop checks its wall clock between
    iterations, so a genuinely slow (rather than hung) solve aborts
    cooperatively and the watchdog thread is never abandoned.
    """
    if timeout_s is None:
        return options
    base = options or GradientProjectionOptions()
    if base.wall_clock_limit_s is not None and base.wall_clock_limit_s <= timeout_s:
        return base
    return dataclasses.replace(base, wall_clock_limit_s=timeout_s)


def fallback_stages(
    problem: SamplingProblem,
    policy: SupervisorPolicy,
    options: GradientProjectionOptions | None = None,
    trace: SolverTrace | None = None,
    exclude: str | None = None,
) -> list[tuple[str, Callable[[], SamplingSolution]]]:
    """Build the policy's fallback chain as named callables.

    For callers that supply their own primary stage (the warm-started
    chain) and append the declarative fallbacks behind it; ``exclude``
    drops the primary's own method from the chain.
    """
    return [
        (name, _stage_callable(problem, name, policy, options, trace, False))
        for name in policy.fallbacks
        if name != exclude
    ]


def supervised_solve(
    problem: SamplingProblem,
    method: str = "gradient_projection",
    policy: SupervisorPolicy | None = None,
    options: GradientProjectionOptions | None = None,
    trace: SolverTrace | None = None,
    presolve: bool = False,
    warm_start=None,
) -> SamplingSolution:
    """Solve with retries, per-attempt timeouts and a fallback chain.

    Drop-in for :func:`repro.core.solve` with a fault-tolerance
    contract: the returned solution is the exact optimum whenever any
    exact stage succeeded (``degraded=False``), else the best degraded
    answer the chain produced; :class:`SupervisorError` is raised only
    when every stage raised.  ``SolverDiagnostics.attempts`` holds the
    full attempt log.
    """
    policy = policy or SupervisorPolicy()
    stage_names = [method]
    stage_names += [name for name in policy.fallbacks if name != method]
    stages = [
        (
            name,
            _stage_callable(
                problem, name, policy, options, trace, presolve,
                warm_start=warm_start if name == "gradient_projection" else None,
            ),
        )
        for name in stage_names
    ]
    return supervise_stages(stages, policy)
